#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "common/macros.h"

namespace phoenix::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (value == std::floor(value) && std::fabs(value) < kMaxExact) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::string JsonNumber(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string JsonNumber(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

void JsonWriter::NewlineAndIndent() {
  if (indent_ <= 0) return;
  out_.push_back('\n');
  out_.append(static_cast<size_t>(indent_) * stack_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  PHX_CHECK(!done_);
  if (stack_.empty()) return;
  Level& level = stack_.back();
  if (level.kind == 'o') {
    PHX_CHECK(key_pending_);  // object values require a preceding Key()
    key_pending_ = false;
    return;
  }
  if (level.has_value) out_.push_back(',');
  level.has_value = true;
  NewlineAndIndent();
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  PHX_CHECK(!stack_.empty() && stack_.back().kind == 'o' && !key_pending_);
  if (stack_.back().has_value) out_.push_back(',');
  stack_.back().has_value = true;
  NewlineAndIndent();
  out_ += JsonEscape(key);
  out_ += indent_ > 0 ? ": " : ":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  stack_.push_back(Level{'o'});
  out_.push_back('{');
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  PHX_CHECK(!stack_.empty() && stack_.back().kind == 'o' && !key_pending_);
  bool had_values = stack_.back().has_value;
  stack_.pop_back();
  if (had_values) NewlineAndIndent();
  out_.push_back('}');
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  stack_.push_back(Level{'a'});
  out_.push_back('[');
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  PHX_CHECK(!stack_.empty() && stack_.back().kind == 'a');
  bool had_values = stack_.back().has_value;
  stack_.pop_back();
  if (had_values) NewlineAndIndent();
  out_.push_back(']');
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += JsonEscape(value);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Number(double value) { return Raw(JsonNumber(value)); }
JsonWriter& JsonWriter::Number(uint64_t value) {
  return Raw(JsonNumber(value));
}
JsonWriter& JsonWriter::Number(int64_t value) { return Raw(JsonNumber(value)); }

JsonWriter& JsonWriter::Bool(bool value) {
  return Raw(value ? "true" : "false");
}

JsonWriter& JsonWriter::Null() { return Raw("null"); }

JsonWriter& JsonWriter::Raw(std::string_view raw) {
  BeforeValue();
  out_ += raw;
  if (stack_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  PHX_CHECK(stack_.empty());
  return out_;
}

// --- values ----------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

// --- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    PHX_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(const std::string& what) {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        PHX_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::MakeString(std::move(s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return JsonValue::MakeBool(true);
        }
        return Err("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return JsonValue::MakeBool(false);
        }
        return Err("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return JsonValue::MakeNull();
        }
        return Err("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::MakeObject(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      PHX_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Err("expected ':'");
      PHX_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::MakeObject(std::move(members));
      return Err("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::MakeArray(std::move(items));
    while (true) {
      PHX_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::MakeArray(std::move(items));
      return Err("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Err("bad escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Err("bad \\u escape");
            }
          }
          // UTF-8 encode (the writer only ever emits \u00xx controls, but
          // accept the full BMP).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Err("bad escape");
      }
    }
    return Err("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Err("bad number");
    return JsonValue::MakeNumber(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace phoenix::obs
