#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace phoenix::obs {

const std::vector<double>& Histogram::DefaultLatencyBoundsMs() {
  static const std::vector<double>* kBounds = [] {
    auto* bounds = new std::vector<double>();
    // 8 log-spaced buckets per decade, 1e-3 us .. 1e7 ms.
    const double kStep = std::pow(10.0, 1.0 / 8.0);
    double b = 1e-6;
    while (b < 1e7) {
      bounds->push_back(b);
      b *= kStep;
    }
    return bounds;
  }();
  return *kBounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  PHX_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Record(double value) {
  size_t i = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  ++buckets_[i];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Index (1-based rank) of the target sample.
  double rank = p / 100.0 * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    uint64_t next = cumulative + buckets_[i];
    if (static_cast<double>(next) >= rank) {
      // Linear interpolation across this bucket's value range, clamped to
      // the observed extremes (exact for the underflow/overflow buckets).
      double lo = i == 0 ? min_ : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : max_;
      lo = std::max(lo, min_);
      hi = std::min(hi, max_);
      if (hi <= lo) return lo;
      double inside =
          (rank - static_cast<double>(cumulative)) / buckets_[i];
      return lo + (hi - lo) * std::clamp(inside, 0.0, 1.0);
    }
    cumulative = next;
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  PHX_CHECK(bounds_ == other.bounds_);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

LatencySummary Summarize(const Histogram& h) {
  LatencySummary s;
  s.count = h.count();
  s.mean = h.mean();
  s.p50 = h.Percentile(50);
  s.p95 = h.Percentile(95);
  s.p99 = h.Percentile(99);
  s.min = h.min();
  s.max = h.max();
  return s;
}

std::string MetricsRegistry::MakeKey(const std::string& name,
                                     const LabelSet& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key.push_back('\0');
    key += k;
    key.push_back('\0');
    key += v;
  }
  return key;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const LabelSet& labels) {
  auto [it, inserted] = counters_.try_emplace(MakeKey(name, labels));
  if (inserted) it->second.entry = Entry{name, labels};
  return it->second.metric;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const LabelSet& labels) {
  auto [it, inserted] = gauges_.try_emplace(MakeKey(name, labels));
  if (inserted) it->second.entry = Entry{name, labels};
  return it->second.metric;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const LabelSet& labels,
                                         const std::vector<double>& bounds) {
  auto key = MakeKey(name, labels);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::move(key), Slot<Histogram>{Entry{name, labels},
                                                      Histogram(bounds)})
             .first;
  }
  return it->second.metric;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            const LabelSet& labels) const {
  auto it = counters_.find(MakeKey(name, labels));
  return it == counters_.end() ? nullptr : &it->second.metric;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name,
                                                const LabelSet& labels) const {
  auto it = histograms_.find(MakeKey(name, labels));
  return it == histograms_.end() ? nullptr : &it->second.metric;
}

uint64_t MetricsRegistry::CounterTotal(const std::string& name) const {
  uint64_t total = 0;
  for (const auto& [key, slot] : counters_) {
    if (slot.entry.name == name) total += slot.metric.value();
  }
  return total;
}

double MetricsRegistry::GaugeTotal(const std::string& name) const {
  double total = 0;
  for (const auto& [key, slot] : gauges_) {
    if (slot.entry.name == name) total += slot.metric.value();
  }
  return total;
}

Histogram MetricsRegistry::MergedHistogram(const std::string& name) const {
  Histogram merged;
  bool first = true;
  for (const auto& [key, slot] : histograms_) {
    if (slot.entry.name != name) continue;
    if (first) {
      merged = Histogram(slot.metric.bounds());
      first = false;
    }
    merged.Merge(slot.metric);
  }
  return merged;
}

namespace {

void WriteLabels(JsonWriter& w, const LabelSet& labels) {
  w.Key("labels").BeginObject();
  for (const auto& [k, v] : labels) {
    w.Key(k).String(v);
  }
  w.EndObject();
}

}  // namespace

void WriteLatencySummaryJson(JsonWriter& w, const LatencySummary& s) {
  w.Key("count").Number(s.count);
  w.Key("mean").Number(s.mean);
  w.Key("p50").Number(s.p50);
  w.Key("p95").Number(s.p95);
  w.Key("p99").Number(s.p99);
  w.Key("min").Number(s.min);
  w.Key("max").Number(s.max);
}

void MetricsRegistry::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("counters").BeginArray();
  for (const auto& [key, slot] : counters_) {
    w.BeginObject();
    w.Key("name").String(slot.entry.name);
    WriteLabels(w, slot.entry.labels);
    w.Key("value").Number(slot.metric.value());
    w.EndObject();
  }
  w.EndArray();
  w.Key("gauges").BeginArray();
  for (const auto& [key, slot] : gauges_) {
    w.BeginObject();
    w.Key("name").String(slot.entry.name);
    WriteLabels(w, slot.entry.labels);
    w.Key("value").Number(slot.metric.value());
    w.EndObject();
  }
  w.EndArray();
  w.Key("histograms").BeginArray();
  for (const auto& [key, slot] : histograms_) {
    w.BeginObject();
    w.Key("name").String(slot.entry.name);
    WriteLabels(w, slot.entry.labels);
    WriteLatencySummaryJson(w, Summarize(slot.metric));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace phoenix::obs
