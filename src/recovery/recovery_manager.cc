#include "recovery/recovery_manager.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"
#include "common/strings.h"
#include "recovery/parallel_replay.h"
#include "runtime/machine.h"
#include "runtime/process.h"
#include "runtime/simulation.h"
#include "wal/log_reader.h"

namespace phoenix {
namespace {

// Keeps the newest entry per (client, context); on equal seq, prefer the
// one that knows where the reply lives on the log.
void MergeLastCall(std::map<LastCallTable::Key, LastCallEntry>& table,
                   const ClientKey& client, LastCallEntry entry) {
  LastCallTable::Key key(client, entry.context_id);
  auto it = table.find(key);
  if (it == table.end() || it->second.seq < entry.seq) {
    table[key] = std::move(entry);
  } else if (it->second.seq == entry.seq &&
             it->second.reply_lsn == kInvalidLsn &&
             entry.reply_lsn != kInvalidLsn) {
    it->second = std::move(entry);
  }
}

// Metric/trace label of the recovering process, e.g. "ma/1".
std::string ProcLabel(Process* proc) {
  return StrCat(proc->machine_name(), "/", proc->pid());
}

// A recovery is its own causal chain: root it in a fresh trace unless the
// triggering chain (a retry that restarted the server) is already on the
// stack.
obs::SpanLink RecoveryRoot(Simulation* sim) {
  obs::SpanLink parent = sim->Current();
  if (sim->tracer().enabled() && parent.trace_id == 0) {
    parent = obs::SpanLink{sim->tracer().NewTraceId(), 0};
  }
  return parent;
}

}  // namespace

const char* RecoveryModeName(RecoveryMode mode) {
  switch (mode) {
    case RecoveryMode::kNormal:
      return "normal";
    case RecoveryMode::kSalvageAssessed:
      return "salvage_assessed";
    case RecoveryMode::kColdStart:
      return "cold_start";
  }
  return "unknown";
}

RecoveryManager::RecoveryManager(Process* process, RecoveryMode mode)
    : process_(process), mode_(mode) {}

Status RecoverContextFailure(Process* process, uint64_t context_id) {
  Process& proc = *process;
  Simulation* sim = proc.simulation();
  Context* ctx = proc.FindContext(context_id);
  if (ctx == nullptr) {
    return Status::NotFound(StrCat("no context ", context_id));
  }
  uint64_t origin = ctx->recovery_lsn();
  if (origin == kInvalidLsn) {
    return Status::FailedPrecondition(
        StrCat("context ", context_id, " has no recovery origin"));
  }
  // A context failure loses neither the process's tables nor its log
  // buffer, so the scan covers the unforced tail too. All of one context's
  // records route to one shard, so the scan stays shard-local (shard 0 ==
  // the whole log when unsharded).
  bool sharded = proc.log().sharded();
  uint32_t shard = sharded ? ShardOfLsn(origin) : 0;
  uint64_t local_origin = sharded ? LocalOfLsn(origin) : origin;
  std::vector<uint8_t> log_bytes = proc.log().ShardFullLog(shard);
  LogView log{&log_bytes, proc.log().shard_head_base(shard)};

  std::string obs_label = ProcLabel(process);
  sim->metrics()
      .GetCounter("phoenix.recovery.context_recoveries",
                  obs::LabelSet{{"process", obs_label}})
      .Increment();
  obs::Tracer::Span obs_span = sim->tracer().StartSpan(
      "recovery", "context_failure", obs_label, RecoveryRoot(sim),
      {obs::Arg("context", context_id), obs::Arg("origin", origin)});
  TraceFrameScope trace_frame(sim, obs_span);

  proc.set_recovering(true);
  ctx->ClearMembers();

  auto restore = [&]() -> Status {
    Result<LogRecord> read = sharded
                                 ? ReadPrefixedRecordAt(log, local_origin)
                                 : ReadRecordAt(log, local_origin);
    if (!read.ok()) return std::move(read).status();
    LogRecord record = std::move(read).value();
    if (const auto* state = std::get_if<ContextStateRecord>(&record)) {
      sim->clock().AdvanceMs(sim->costs().recovery_create_ms +
                             sim->costs().recovery_restore_state_ms);
      for (const ComponentSnapshot& snap : state->components) {
        PHX_RETURN_IF_ERROR(ctx->RestoreComponent(snap));
      }
      ctx->set_last_outgoing_seq(state->last_outgoing_seq);
      return Status::OK();
    }
    if (const auto* creation = std::get_if<CreationRecord>(&record)) {
      sim->clock().AdvanceMs(sim->costs().recovery_create_ms);
      PHX_ASSIGN_OR_RETURN(std::unique_ptr<Component> instance,
                           sim->factories().Create(creation->type_name));
      ctx->AddComponent(std::move(instance), creation->type_name,
                        creation->name, creation->kind, context_id);
      proc.IndexComponentName(creation->name, context_id);
      ctx->set_last_outgoing_seq(0);
      return Status::OK();
    }
    return Status::Corruption(
        StrCat("context ", context_id, " origin is not a state/creation"));
  };
  Status status = restore();

  if (status.ok()) {
    std::optional<PendingReplay> pending;
    auto flush = [&]() -> Status {
      if (!pending.has_value()) return Status::OK();
      PendingReplay unit = std::move(*pending);
      pending.reset();
      if (unit.is_creation) {
        if (ctx->parent_initialized()) return Status::OK();
        return ctx->ReplayCreation(unit.creation.ctor_args,
                                   std::move(unit.feed));
      }
      Component* parent = ctx->parent();
      PHX_CHECK(parent != nullptr);
      CallMessage msg = MessageFromRecord(unit.incoming, parent->uri());
      Result<ReplyMessage> reply =
          ctx->ReplayIncoming(msg, std::move(unit.feed));
      return reply.ok() ? Status::OK() : std::move(reply).status();
    };

    LogReader reader(log, local_origin);
    reader.EnableSalvage();
    if (sharded) reader.EnableGsnPrefix();
    while (auto parsed = reader.Next()) {
      sim->clock().AdvanceMs(sim->costs().recovery_scan_record_ms);
      if (const auto* creation = std::get_if<CreationRecord>(&parsed->record);
          creation != nullptr && creation->context_id == context_id &&
          parsed->lsn == local_origin) {
        PendingReplay unit;
        unit.is_creation = true;
        unit.start_lsn = parsed->lsn;
        unit.creation = *creation;
        pending = std::move(unit);
      } else if (const auto* incoming =
                     std::get_if<IncomingCallRecord>(&parsed->record);
                 incoming != nullptr && incoming->context_id == context_id) {
        status = flush();
        if (!status.ok()) break;
        PendingReplay unit;
        unit.start_lsn = parsed->lsn;
        unit.incoming = *incoming;
        pending = std::move(unit);
      } else if (const auto* reply =
                     std::get_if<ReplyReceivedRecord>(&parsed->record);
                 reply != nullptr && reply->context_id == context_id &&
                 pending.has_value()) {
        pending->feed.replies[reply->seq] = *reply;
      }
    }
    if (status.ok()) status = flush();
  }

  proc.set_recovering(false);
  return status;
}

Status RecoveryManager::Recover() {
  Process& proc = *process_;
  Simulation* sim = proc.simulation();
  sim->clock().AdvanceMs(sim->costs().recovery_init_ms);

  std::string label = ProcLabel(&proc);
  obs::LabelSet labels{{"process", label}};
  double t0 = sim->clock().NowMs();
  sim->metrics().GetCounter("phoenix.recovery.recoveries", labels).Increment();
  obs::Tracer::Span recover_span =
      sim->tracer().StartSpan("recovery", "recover", label,
                              RecoveryRoot(sim));
  TraceFrameScope recover_frame(sim, recover_span);
  if (mode_ != RecoveryMode::kNormal) {
    // Degraded rungs are worth counting; normal recovery stays byte-
    // identical to the pre-ladder behavior (no extra metric, no span arg).
    sim->metrics()
        .GetCounter("phoenix.recovery.mode",
                    obs::LabelSet{{"process", label},
                                  {"mode", RecoveryModeName(mode_)}})
        .Increment();
    recover_span.AddArg(obs::Arg("mode", RecoveryModeName(mode_)));
  }

  // Start point: the published checkpoint, or the whole retained log —
  // after validating the well-known LSN and salvaging storage damage.
  // A sharded WAL works in global-sequence space: the "start" is a gsn cut
  // over the materialized k-way merge instead of an LSN.
  bool sharded = proc.log().sharded();
  uint64_t start_lsn =
      sharded ? AssessAndSalvageShardedLog() : AssessAndSalvageLog();

  // Analysis phase: one forward scan rebuilding the recovery map and the
  // global tables (§4.4's first pass).
  {
    obs::Tracer::Span span = sim->tracer().StartSpan(
        "recovery", "analysis", label, recover_span.link(),
        {obs::Arg("start_lsn", start_lsn)});
    TraceFrameScope frame(sim, span);
    PHX_RETURN_IF_ERROR(sharded ? PassOneSharded(start_lsn)
                                : PassOne(start_lsn));
    span.AddArg(obs::Arg("records_scanned", stats_.records_scanned));
    span.AddArg(
        obs::Arg("contexts_found", static_cast<uint64_t>(infos_.size())));
  }

  // The activator context always recovers by replay from the scan start.
  if (sharded) {
    if (infos_[0].recovery_order == kInvalidLsn) {
      infos_[0].recovery_order = start_lsn;  // the start is a gsn cut
    }
  } else if (infos_[0].recovery_lsn == kInvalidLsn) {
    infos_[0].recovery_lsn = start_lsn;
  }

  // Redo phase: reinstall saved context states and the rebuilt tables.
  {
    obs::Tracer::Span span = sim->tracer().StartSpan(
        "recovery", "redo", label, recover_span.link());
    TraceFrameScope frame(sim, span);
    PHX_RETURN_IF_ERROR(RestoreContextStates());
    InstallTables();
    span.AddArg(obs::Arg("contexts_restored_from_state",
                         stats_.contexts_restored_from_state));
  }

  // New components created while recovering (replayed activator calls whose
  // creation records were lost) must reuse the original sequential ids.
  uint64_t max_parent_id = 0;
  for (const auto& [context_id, info] : infos_) {
    if (context_id < Context::kSubordinateIdBase) {
      max_parent_id = std::max(max_parent_id, context_id);
    }
  }
  proc.set_next_parent_id(max_parent_id + 1);

  // Replay phase: re-execute each context forward from its origin (§4.4's
  // second pass).
  {
    obs::Tracer::Span span = sim->tracer().StartSpan(
        "recovery", "replay", label, recover_span.link());
    TraceFrameScope frame(sim, span);
    if (mode_ == RecoveryMode::kColdStart) {
      PHX_RETURN_IF_ERROR(ColdStartPassTwo());
    } else {
      PHX_RETURN_IF_ERROR(PassTwo());
    }
    span.AddArg(obs::Arg("calls_replayed", stats_.calls_replayed));
    span.AddArg(obs::Arg("creations_replayed", stats_.creations_replayed));
  }

  double elapsed = sim->clock().NowMs() - t0;
  sim->metrics()
      .GetCounter("phoenix.recovery.records_scanned", labels)
      .Increment(stats_.records_scanned);
  sim->metrics()
      .GetCounter("phoenix.recovery.calls_replayed", labels)
      .Increment(stats_.calls_replayed);
  sim->metrics()
      .GetHistogram("phoenix.recovery.duration_ms", labels)
      .Record(elapsed);
  recover_span.AddArg(obs::Arg("elapsed_ms", elapsed));
  return Status::OK();
}

uint64_t RecoveryManager::AssessAndSalvageLog() {
  Process& proc = *process_;
  Simulation* sim = proc.simulation();
  std::string label = ProcLabel(&proc);
  obs::LabelSet labels{{"process", label}};

  uint64_t start_lsn = proc.log().head_base();
  Result<uint64_t> well_known = proc.log().ReadWellKnownLsn();
  if (mode_ != RecoveryMode::kNormal) {
    // Degraded rungs distrust the published checkpoint pointer outright —
    // a prior attempt already failed, and a lying well-known file is one of
    // the ways it can keep failing. Rebuild from a full scan instead.
    if (well_known.ok()) {
      sim->metrics()
          .GetCounter("phoenix.recovery.salvage.wkf_distrusted", labels)
          .Increment();
      sim->tracer().Instant("recovery", "salvage_wkf_distrusted", label,
                            {obs::Arg("wkf_lsn", *well_known),
                             obs::Arg("scan_from", start_lsn)});
    }
  } else if (well_known.ok()) {
    // A corrupt well-known file (bit rot, or one pointing past a torn tail)
    // must not be trusted: unless its LSN lands exactly on a readable
    // begin-checkpoint record, rebuild from a full scan of the retained
    // log instead.
    uint64_t wkf = *well_known;
    LogView log = proc.log().StableView();
    bool valid = false;
    if (wkf >= log.base && wkf <= log.base + log.bytes->size()) {
      Result<LogRecord> rec = ReadRecordAt(log, wkf);
      valid = rec.ok() &&
              std::get_if<BeginCheckpointRecord>(&rec.value()) != nullptr;
    }
    if (valid) {
      start_lsn = wkf;
    } else {
      sim->metrics()
          .GetCounter("phoenix.recovery.salvage.wkf_fallback", labels)
          .Increment();
      sim->tracer().Instant("recovery", "salvage_wkf_fallback", label,
                            {obs::Arg("wkf_lsn", wkf),
                             obs::Arg("scan_from", start_lsn)});
    }
  }

  // Damage probe: one un-costed salvage scan. A torn tail is physically
  // amputated at the first unreadable byte so the partial frame cannot
  // pollute records appended after this recovery; unreadable mid-log
  // regions above a checkpoint start force a full scan, because the bytes
  // lost there may be the checkpoint's own table records.
  for (;;) {
    LogView log = proc.log().StableView();
    LogReader probe(log, start_lsn);
    probe.EnableSalvage();
    while (probe.Next()) {
    }
    if (probe.tail_torn()) {
      uint64_t torn_at = probe.torn_offset();
      uint64_t discarded = log.base + log.bytes->size() - torn_at;
      proc.log().TruncateStableTail(torn_at);
      sim->metrics()
          .GetCounter("phoenix.recovery.salvage.torn_tail_bytes", labels)
          .Increment(discarded);
      sim->tracer().Instant("recovery", "salvage_torn_tail", label,
                            {obs::Arg("torn_at_lsn", torn_at),
                             obs::Arg("bytes_discarded", discarded)});
      continue;  // re-probe the amputated log
    }
    if (!probe.skipped_ranges().empty() &&
        start_lsn > proc.log().head_base()) {
      start_lsn = proc.log().head_base();
      sim->metrics()
          .GetCounter("phoenix.recovery.salvage.full_scan_fallback", labels)
          .Increment();
      sim->tracer().Instant("recovery", "salvage_full_scan", label,
                            {obs::Arg("scan_from", start_lsn)});
      continue;  // re-probe the widened range
    }
    if (!probe.skipped_ranges().empty()) {
      sim->metrics()
          .GetCounter("phoenix.recovery.salvage.ranges_skipped", labels)
          .Increment(probe.skipped_ranges().size());
      sim->metrics()
          .GetCounter("phoenix.recovery.salvage.bytes_skipped", labels)
          .Increment(probe.skipped_bytes());
      for (const SkippedRange& range : probe.skipped_ranges()) {
        sim->tracer().Instant("recovery", "salvage_skip", label,
                              {obs::Arg("from_lsn", range.from_lsn),
                               obs::Arg("to_lsn", range.to_lsn)});
      }
    }
    return start_lsn;
  }
}

uint64_t RecoveryManager::AssessAndSalvageShardedLog() {
  Process& proc = *process_;
  Simulation* sim = proc.simulation();
  LogManager& log = proc.log();
  std::string label = ProcLabel(&proc);
  obs::LabelSet labels{{"process", label}};

  // Per-shard damage probe (un-costed): torn tails are physically amputated
  // per shard so the partial frames cannot pollute records appended after
  // this recovery — the other shards keep their tails untouched. Mid-log
  // skipped ranges stay in place; the merged scan reports them and the
  // replay planner demotes exactly the chains they touched.
  bool any_skipped = false;
  for (uint32_t s = 0; s < log.shard_count(); ++s) {
    for (;;) {
      LogView view = log.ShardStableView(s);
      LogReader probe(view, log.shard_head_base(s));
      probe.EnableSalvage();
      probe.EnableGsnPrefix();
      while (probe.Next()) {
      }
      if (probe.tail_torn()) {
        uint64_t torn_at = probe.torn_offset();
        uint64_t discarded = view.base + view.bytes->size() - torn_at;
        log.TruncateStableTail(MakeShardLsn(s, torn_at));
        sim->metrics()
            .GetCounter("phoenix.recovery.salvage.torn_tail_bytes", labels)
            .Increment(discarded);
        sim->tracer().Instant("recovery", "salvage_torn_tail", label,
                              {obs::Arg("shard", static_cast<uint64_t>(s)),
                               obs::Arg("torn_at_lsn", torn_at),
                               obs::Arg("bytes_discarded", discarded)});
        continue;  // re-probe the amputated shard
      }
      if (!probe.skipped_ranges().empty()) {
        any_skipped = true;
        sim->metrics()
            .GetCounter("phoenix.recovery.salvage.ranges_skipped", labels)
            .Increment(probe.skipped_ranges().size());
        sim->metrics()
            .GetCounter("phoenix.recovery.salvage.bytes_skipped", labels)
            .Increment(probe.skipped_bytes());
        for (const SkippedRange& range : probe.skipped_ranges()) {
          sim->tracer().Instant("recovery", "salvage_skip", label,
                                {obs::Arg("shard", static_cast<uint64_t>(s)),
                                 obs::Arg("from_lsn", range.from_lsn),
                                 obs::Arg("to_lsn", range.to_lsn)});
        }
      }
      break;
    }
  }

  // Scan cut: the begin-checkpoint record's global sequence number (read
  // off shard 0, where every checkpoint record lives), or 0 for a full
  // merge. The same trust rules as the single-log path apply.
  uint64_t start_order = 0;
  Result<uint64_t> well_known = log.ReadWellKnownLsn();
  if (mode_ != RecoveryMode::kNormal) {
    if (well_known.ok()) {
      sim->metrics()
          .GetCounter("phoenix.recovery.salvage.wkf_distrusted", labels)
          .Increment();
      sim->tracer().Instant("recovery", "salvage_wkf_distrusted", label,
                            {obs::Arg("wkf_lsn", *well_known),
                             obs::Arg("scan_from_order", start_order)});
    }
  } else if (well_known.ok()) {
    uint64_t wkf = *well_known;
    bool valid = false;
    uint64_t order = 0;
    // A checkpoint pointer is a shard-0 composite LSN; a bit-rotted one can
    // carry any shard bits, so the shard check is part of validation.
    if (wkf != kInvalidLsn && ShardOfLsn(wkf) == 0) {
      Result<LogRecord> rec = log.ReadRecordAtLsn(wkf);
      if (rec.ok() &&
          std::get_if<BeginCheckpointRecord>(&rec.value()) != nullptr) {
        Result<uint64_t> got = log.OrderOfRecordAt(wkf);
        if (got.ok()) {
          valid = true;
          order = *got;
        }
      }
    }
    if (valid) {
      start_order = order;
    } else {
      sim->metrics()
          .GetCounter("phoenix.recovery.salvage.wkf_fallback", labels)
          .Increment();
      sim->tracer().Instant("recovery", "salvage_wkf_fallback", label,
                            {obs::Arg("wkf_lsn", wkf),
                             obs::Arg("scan_from_order", start_order)});
    }
  }
  if (any_skipped && start_order > 0) {
    // Bytes lost mid-log may be the checkpoint's own table records; only a
    // full merge can prove otherwise.
    start_order = 0;
    sim->metrics()
        .GetCounter("phoenix.recovery.salvage.full_scan_fallback", labels)
        .Increment();
    sim->tracer().Instant("recovery", "salvage_full_scan", label,
                          {obs::Arg("scan_from_order", start_order)});
  }

  // Materialize the k-way merge both passes (and the replay planner) will
  // iterate, and index it by composite LSN for origin-order lookups.
  merged_ = ScanShardedLog(log);
  order_of_lsn_.clear();
  for (const OrderedRecord& rec : merged_.records) {
    order_of_lsn_[rec.lsn] = rec.order;
  }
  sim->metrics()
      .GetCounter("phoenix.recovery.merge.records", labels)
      .Increment(merged_.records.size());
  if (merged_.inversions > 0) {
    sim->metrics()
        .GetCounter("phoenix.recovery.merge.inversions", labels)
        .Increment(merged_.inversions);
  }
  return start_order;
}

uint64_t RecoveryManager::OrderOfLsn(uint64_t lsn) const {
  auto it = order_of_lsn_.find(lsn);
  return it == order_of_lsn_.end() ? kInvalidLsn : it->second;
}

Status RecoveryManager::PassOne(uint64_t start_lsn) {
  Process& proc = *process_;
  Simulation* sim = proc.simulation();
  LogView log = proc.log().StableView();

  LogReader reader(log, start_lsn);
  reader.EnableSalvage();
  while (auto parsed = reader.Next()) {
    ++stats_.records_scanned;
    sim->clock().AdvanceMs(sim->costs().recovery_scan_record_ms);
    if (proc.MaybeCrash(FailurePoint::kDuringRecoveryAnalysis)) {
      return Status::Crashed("crashed during recovery analysis scan");
    }
    uint64_t lsn = parsed->lsn;

    if (const auto* e =
            std::get_if<CheckpointContextEntryRecord>(&parsed->record)) {
      ContextInfo& info = infos_[e->context_id];
      if (info.recovery_lsn == kInvalidLsn ||
          (e->recovery_lsn != kInvalidLsn &&
           e->recovery_lsn > info.recovery_lsn)) {
        info.recovery_lsn = e->recovery_lsn;
      }
      info.checkpoint_last_outgoing_seq = e->last_outgoing_seq;
    } else if (const auto* c =
                   std::get_if<CheckpointLastCallRecord>(&parsed->record)) {
      LastCallEntry entry;
      entry.seq = c->call_id.seq;
      entry.reply_lsn = c->reply_lsn;
      entry.context_id = c->context_id;
      MergeLastCall(rebuilt_last_calls_, c->call_id.caller, entry);
    } else if (const auto* t =
                   std::get_if<CheckpointRemoteTypeRecord>(&parsed->record)) {
      rebuilt_remote_types_[t->uri] = RemoteTypeInfo{t->kind, t->type_name};
    } else if (const auto* cr = std::get_if<CreationRecord>(&parsed->record)) {
      ContextInfo& info = infos_[cr->context_id];
      if (info.recovery_lsn == kInvalidLsn) info.recovery_lsn = lsn;
    } else if (const auto* s =
                   std::get_if<ContextStateRecord>(&parsed->record)) {
      ContextInfo& info = infos_[s->context_id];
      info.recovery_lsn = lsn;
      info.restored_from_state = true;
    } else if (const auto* lr =
                   std::get_if<LastCallReplyRecord>(&parsed->record)) {
      LastCallEntry entry;
      entry.seq = lr->call_id.seq;
      entry.reply_lsn = lsn;
      entry.context_id = lr->context_id;
      MergeLastCall(rebuilt_last_calls_, lr->call_id.caller, entry);
    } else if (const auto* rs = std::get_if<ReplySentRecord>(&parsed->record)) {
      // Baseline long reply records double as reply sources for the table.
      if (rs->long_form && !rs->call_id.caller.machine.empty()) {
        LastCallEntry entry;
        entry.seq = rs->call_id.seq;
        entry.reply_lsn = lsn;
        entry.context_id = rs->context_id;
        MergeLastCall(rebuilt_last_calls_, rs->call_id.caller, entry);
      }
    }
    // Message records are pass 2's business; begin/end markers need nothing.
  }
  stats_.contexts_found = infos_.size();
  return Status::OK();
}

Status RecoveryManager::PassOneSharded(uint64_t start_order) {
  Process& proc = *process_;
  Simulation* sim = proc.simulation();

  // All of a context's origin candidates (state records, its creation; for
  // the activator also the checkpoint records, which all live on shard 0)
  // share one shard, so the composite-LSN comparisons between them below
  // are exactly the single-log ones. recovery_order is maintained alongside
  // for the cross-context decisions (scan cuts, pass-2 filtering).
  for (const OrderedRecord& rec : merged_.records) {
    if (rec.order < start_order) continue;
    ++stats_.records_scanned;
    sim->clock().AdvanceMs(sim->costs().recovery_scan_record_ms);
    if (proc.MaybeCrash(FailurePoint::kDuringRecoveryAnalysis)) {
      return Status::Crashed("crashed during recovery analysis scan");
    }
    uint64_t lsn = rec.lsn;

    if (const auto* e =
            std::get_if<CheckpointContextEntryRecord>(&rec.record)) {
      ContextInfo& info = infos_[e->context_id];
      if (info.recovery_lsn == kInvalidLsn ||
          (e->recovery_lsn != kInvalidLsn &&
           e->recovery_lsn > info.recovery_lsn)) {
        info.recovery_lsn = e->recovery_lsn;
        info.recovery_order = e->recovery_lsn == kInvalidLsn
                                  ? kInvalidLsn
                                  : OrderOfLsn(e->recovery_lsn);
      }
      info.checkpoint_last_outgoing_seq = e->last_outgoing_seq;
    } else if (const auto* c =
                   std::get_if<CheckpointLastCallRecord>(&rec.record)) {
      LastCallEntry entry;
      entry.seq = c->call_id.seq;
      entry.reply_lsn = c->reply_lsn;
      entry.context_id = c->context_id;
      MergeLastCall(rebuilt_last_calls_, c->call_id.caller, entry);
    } else if (const auto* t =
                   std::get_if<CheckpointRemoteTypeRecord>(&rec.record)) {
      rebuilt_remote_types_[t->uri] = RemoteTypeInfo{t->kind, t->type_name};
    } else if (const auto* cr = std::get_if<CreationRecord>(&rec.record)) {
      ContextInfo& info = infos_[cr->context_id];
      if (info.recovery_lsn == kInvalidLsn) {
        info.recovery_lsn = lsn;
        info.recovery_order = rec.order;
      }
    } else if (const auto* s = std::get_if<ContextStateRecord>(&rec.record)) {
      ContextInfo& info = infos_[s->context_id];
      info.recovery_lsn = lsn;
      info.recovery_order = rec.order;
      info.restored_from_state = true;
    } else if (const auto* lr =
                   std::get_if<LastCallReplyRecord>(&rec.record)) {
      LastCallEntry entry;
      entry.seq = lr->call_id.seq;
      entry.reply_lsn = lsn;
      entry.context_id = lr->context_id;
      MergeLastCall(rebuilt_last_calls_, lr->call_id.caller, entry);
    } else if (const auto* rs = std::get_if<ReplySentRecord>(&rec.record)) {
      if (rs->long_form && !rs->call_id.caller.machine.empty()) {
        LastCallEntry entry;
        entry.seq = rs->call_id.seq;
        entry.reply_lsn = lsn;
        entry.context_id = rs->context_id;
        MergeLastCall(rebuilt_last_calls_, rs->call_id.caller, entry);
      }
    }
  }
  stats_.contexts_found = infos_.size();
  return Status::OK();
}

Status RecoveryManager::RestoreContextStates() {
  Process& proc = *process_;
  Simulation* sim = proc.simulation();
  std::string label = ProcLabel(&proc);

  for (auto& [context_id, info] : infos_) {
    if (context_id == 0) continue;  // activator is rebuilt by Start()
    if (info.recovery_lsn == kInvalidLsn) continue;

    Status status = RestoreOneContext(context_id, info);
    if (status.ok()) {
      if (proc.MaybeCrash(FailurePoint::kDuringRecoveryRestore)) {
        return Status::Crashed("crashed during state reinstatement");
      }
      continue;
    }
    if (!status.IsCorruption()) return status;

    // Salvage: the recovery LSN points at bit-rotted or skipped bytes.
    // State records are redundant — the same state is reachable by replay
    // from an older state record, or from the creation record.
    uint64_t fallback = FindFallbackOrigin(context_id, info.recovery_lsn);
    if (fallback == kInvalidLsn) return status;  // nothing left to try
    sim->metrics()
        .GetCounter("phoenix.recovery.salvage.state_record_fallback",
                    obs::LabelSet{{"process", label}})
        .Increment();
    sim->tracer().Instant("recovery", "salvage_state_fallback", label,
                          {obs::Arg("context", context_id),
                           obs::Arg("bad_lsn", info.recovery_lsn),
                           obs::Arg("fallback_lsn", fallback)});
    info.recovery_lsn = fallback;
    if (proc.log().sharded()) {
      Result<uint64_t> order = proc.log().OrderOfRecordAt(fallback);
      info.recovery_order = order.ok() ? *order : kInvalidLsn;
    }
    info.restored_from_state = false;
    PHX_RETURN_IF_ERROR(RestoreOneContext(context_id, info));
    if (proc.MaybeCrash(FailurePoint::kDuringRecoveryRestore)) {
      return Status::Crashed("crashed during state reinstatement");
    }
  }
  return Status::OK();
}

Status RecoveryManager::RestoreOneContext(uint64_t context_id,
                                          ContextInfo& info) {
  Process& proc = *process_;
  Simulation* sim = proc.simulation();

  Result<LogRecord> read = proc.log().ReadRecordAtLsn(info.recovery_lsn);
  if (!read.ok()) return std::move(read).status();
  LogRecord record = std::move(read).value();

  if (const auto* state = std::get_if<ContextStateRecord>(&record)) {
    // Object creation + registration, then field restore (§5.4 measures
    // these as ~80 ms + ~60 ms).
    sim->clock().AdvanceMs(sim->costs().recovery_create_ms +
                           sim->costs().recovery_restore_state_ms);
    Context* ctx = proc.FindContext(context_id);
    if (ctx == nullptr) ctx = proc.CreateRawContext(context_id);
    for (const ComponentSnapshot& snap : state->components) {
      PHX_RETURN_IF_ERROR(ctx->RestoreComponent(snap));
    }
    ctx->set_state_record_lsn(info.recovery_lsn);
    ctx->set_last_outgoing_seq(state->last_outgoing_seq);
    for (const LastCallRef& ref : state->last_call_refs) {
      LastCallEntry entry;
      entry.seq = ref.call_id.seq;
      entry.reply_lsn = ref.reply_lsn;
      entry.context_id = context_id;
      MergeLastCall(rebuilt_last_calls_, ref.call_id.caller, entry);
    }
    info.restored_from_state = true;
    ++stats_.contexts_restored_from_state;
    return Status::OK();
  }
  if (const auto* creation = std::get_if<CreationRecord>(&record)) {
    // Materialize a blank instance so references resolve and replayed
    // activator calls find it; Initialize replays in pass 2.
    sim->clock().AdvanceMs(sim->costs().recovery_create_ms);
    Context* ctx = proc.FindContext(context_id);
    if (ctx == nullptr) ctx = proc.CreateRawContext(context_id);
    PHX_ASSIGN_OR_RETURN(std::unique_ptr<Component> instance,
                         sim->factories().Create(creation->type_name));
    ctx->AddComponent(std::move(instance), creation->type_name,
                      creation->name, creation->kind, context_id);
    proc.IndexComponentName(creation->name, context_id);
    ctx->set_creation_lsn(info.recovery_lsn);
    return Status::OK();
  }
  return Status::Corruption(
      StrCat("context ", context_id,
             " recovery LSN does not hold a state/creation record"));
}

uint64_t RecoveryManager::FindFallbackOrigin(uint64_t context_id,
                                             uint64_t bad_lsn) {
  Process& proc = *process_;
  // A context's origin candidates all live on one shard, so the salvage
  // scan stays shard-local (the whole log when unsharded).
  uint32_t shard = proc.log().sharded() ? ShardOfLsn(bad_lsn) : 0;
  uint64_t bad_local = proc.log().sharded() ? LocalOfLsn(bad_lsn) : bad_lsn;
  LogView log = proc.log().ShardStableView(shard);
  uint64_t best_state = kInvalidLsn;
  uint64_t best_creation = kInvalidLsn;
  LogReader reader(log, proc.log().shard_head_base(shard));
  reader.EnableSalvage();
  if (proc.log().sharded()) reader.EnableGsnPrefix();
  while (auto parsed = reader.Next()) {
    if (parsed->lsn >= bad_local) break;
    uint64_t lsn = proc.log().sharded() ? MakeShardLsn(shard, parsed->lsn)
                                        : parsed->lsn;
    if (const auto* s = std::get_if<ContextStateRecord>(&parsed->record);
        s != nullptr && s->context_id == context_id) {
      best_state = lsn;
    } else if (const auto* c = std::get_if<CreationRecord>(&parsed->record);
               c != nullptr && c->context_id == context_id) {
      if (best_creation == kInvalidLsn) best_creation = lsn;
    }
  }
  return best_state != kInvalidLsn ? best_state : best_creation;
}

void RecoveryManager::InstallTables() {
  Process& proc = *process_;
  for (const auto& [key, entry] : rebuilt_last_calls_) {
    proc.last_calls().Update(key.first, entry);
  }
  for (const auto& [uri, info] : rebuilt_remote_types_) {
    proc.remote_types().Learn(uri, info.kind, info.type_name);
  }
}

Status RecoveryManager::PassTwo() {
  Process& proc = *process_;
  Simulation* sim = proc.simulation();
  if (proc.log().sharded()) return PassTwoSharded();
  LogView log = proc.log().StableView();

  uint64_t scan_start = kInvalidLsn;
  for (const auto& [context_id, info] : infos_) {
    if (info.recovery_lsn != kInvalidLsn) {
      scan_start = std::min(scan_start, info.recovery_lsn);
    }
  }
  if (scan_start == kInvalidLsn) return Status::OK();  // nothing to recover

  if (sim->options().parallel_replay) {
    Status parallel_result = Status::OK();
    if (TryParallelPassTwo(scan_start, &parallel_result)) {
      return parallel_result;
    }
    // Fell back: the sequential scan below is the reference semantics.
  }

  in_pass_two_ = true;
  // Live calls arriving mid-recovery (a peer's retry) force the target
  // context's pending replay to finish first.
  proc.SetPendingFlusher([this](uint64_t context_id) {
    (void)FlushPending(context_id);
  });

  Status result = Status::OK();
  LogReader reader(log, scan_start);
  reader.EnableSalvage();
  while (auto parsed = reader.Next()) {
    ++stats_.records_scanned;
    sim->clock().AdvanceMs(sim->costs().recovery_scan_record_ms);
    uint64_t lsn = parsed->lsn;

    if (const auto* creation = std::get_if<CreationRecord>(&parsed->record)) {
      auto it = infos_.find(creation->context_id);
      uint64_t origin = it != infos_.end() ? it->second.recovery_lsn
                                           : kInvalidLsn;
      if (origin != kInvalidLsn && lsn < origin) continue;
      if (origin != kInvalidLsn && lsn == origin) {
        PendingReplay unit;
        unit.is_creation = true;
        unit.start_lsn = lsn;
        unit.order = lsn;
        unit.creation = *creation;
        pending_[creation->context_id] = std::move(unit);
      }
      // Creation records newer than the origin (duplicates appended by a
      // previous recovery's live re-creation) need no replay of their own.
    } else if (const auto* incoming =
                   std::get_if<IncomingCallRecord>(&parsed->record)) {
      auto it = infos_.find(incoming->context_id);
      if (it == infos_.end()) continue;  // context created after this scan?
      if (it->second.recovery_lsn != kInvalidLsn &&
          lsn < it->second.recovery_lsn) {
        continue;
      }
      // The previous buffered unit of this context is complete: replay it.
      result = FlushPending(incoming->context_id);
      if (!result.ok()) break;
      if (!proc.alive()) {
        result = Status::Crashed("process died during recovery replay");
        break;
      }
      if (proc.MaybeCrash(FailurePoint::kBetweenReplayUnits)) {
        result = Status::Crashed("crashed between replay units");
        break;
      }
      PendingReplay unit;
      unit.start_lsn = lsn;
      unit.order = lsn;
      unit.incoming = *incoming;
      pending_[incoming->context_id] = std::move(unit);
    } else if (const auto* reply =
                   std::get_if<ReplyReceivedRecord>(&parsed->record)) {
      auto it = pending_.find(reply->context_id);
      if (it != pending_.end()) {
        it->second.feed.replies[reply->seq] = *reply;
      }
      // No pending unit: the reply belongs to a call already covered by a
      // state record or flushed early — safely ignored.
    }
    // OutgoingCallRecords (baseline message 3) are re-derived by replay;
    // ReplySentRecords mark completion but replay re-executes uniformly;
    // state/checkpoint records were handled in pass 1.
  }

  if (result.ok()) {
    // End of log: replay the remaining buffered calls — the last incoming
    // call of each context — oldest first.
    result = FlushAllPendingOldestFirst();
  }

  proc.SetPendingFlusher(nullptr);
  in_pass_two_ = false;
  return result;
}

Status RecoveryManager::PassTwoSharded() {
  Process& proc = *process_;
  Simulation* sim = proc.simulation();

  // Cross-context comparisons — the scan cut here, the below-origin filter
  // in the loop — run in global-sequence space: a context's records and its
  // origin live on one shard, but the *minimum* is taken across contexts on
  // different shards, where composite LSNs do not order by time.
  uint64_t scan_start = kInvalidLsn;
  for (const auto& [context_id, info] : infos_) {
    if (info.recovery_order != kInvalidLsn) {
      scan_start = std::min(scan_start, info.recovery_order);
    }
  }
  if (scan_start == kInvalidLsn) return Status::OK();  // nothing to recover

  if (sim->options().parallel_replay) {
    Status parallel_result = Status::OK();
    if (TryParallelPassTwo(scan_start, &parallel_result)) {
      return parallel_result;
    }
  }

  in_pass_two_ = true;
  proc.SetPendingFlusher([this](uint64_t context_id) {
    (void)FlushPending(context_id);
  });

  Status result = Status::OK();
  for (const OrderedRecord& rec : merged_.records) {
    if (rec.order < scan_start) continue;
    ++stats_.records_scanned;
    sim->clock().AdvanceMs(sim->costs().recovery_scan_record_ms);
    uint64_t lsn = rec.lsn;

    if (const auto* creation = std::get_if<CreationRecord>(&rec.record)) {
      auto it = infos_.find(creation->context_id);
      uint64_t origin_order = it != infos_.end() ? it->second.recovery_order
                                                 : kInvalidLsn;
      if (origin_order != kInvalidLsn && rec.order < origin_order) continue;
      if (origin_order != kInvalidLsn && rec.order == origin_order) {
        PendingReplay unit;
        unit.is_creation = true;
        unit.start_lsn = lsn;
        unit.order = rec.order;
        unit.creation = *creation;
        pending_[creation->context_id] = std::move(unit);
      }
    } else if (const auto* incoming =
                   std::get_if<IncomingCallRecord>(&rec.record)) {
      auto it = infos_.find(incoming->context_id);
      if (it == infos_.end()) continue;
      if (it->second.recovery_order != kInvalidLsn &&
          rec.order < it->second.recovery_order) {
        continue;
      }
      result = FlushPending(incoming->context_id);
      if (!result.ok()) break;
      if (!proc.alive()) {
        result = Status::Crashed("process died during recovery replay");
        break;
      }
      if (proc.MaybeCrash(FailurePoint::kBetweenReplayUnits)) {
        result = Status::Crashed("crashed between replay units");
        break;
      }
      PendingReplay unit;
      unit.start_lsn = lsn;
      unit.order = rec.order;
      unit.incoming = *incoming;
      pending_[incoming->context_id] = std::move(unit);
    } else if (const auto* reply =
                   std::get_if<ReplyReceivedRecord>(&rec.record)) {
      auto it = pending_.find(reply->context_id);
      if (it != pending_.end()) {
        it->second.feed.replies[reply->seq] = *reply;
      }
    }
  }

  if (result.ok()) {
    result = FlushAllPendingOldestFirst();
  }

  proc.SetPendingFlusher(nullptr);
  in_pass_two_ = false;
  return result;
}

Status RecoveryManager::ColdStartPassTwo() {
  Process& proc = *process_;
  Simulation* sim = proc.simulation();
  std::string label = ProcLabel(&proc);

  // Availability rung: reinstate the newest durable state only, no message
  // replay. Contexts restored from state records already hold that state;
  // creation-origin contexts re-run Initialize with an empty feed (their
  // Initialize-time outgoing calls go out live with the original ids, and
  // the servers deduplicate). Every message logged after the origins is
  // abandoned — cold start trades lost work for a process that serves.
  for (auto& [context_id, info] : infos_) {
    if (context_id == 0) continue;  // activator is rebuilt by Start()
    if (info.recovery_lsn == kInvalidLsn || info.restored_from_state) {
      continue;
    }
    Context* ctx = proc.FindContext(context_id);
    if (ctx == nullptr || ctx->parent_initialized()) continue;
    Result<LogRecord> read = proc.log().ReadRecordAtLsn(info.recovery_lsn);
    if (!read.ok()) continue;  // leave blank rather than fail the last rung
    const auto* creation = std::get_if<CreationRecord>(&read.value());
    if (creation == nullptr) continue;
    sim->clock().AdvanceMs(sim->costs().recovery_replay_call_ms);
    ++stats_.creations_replayed;
    PHX_RETURN_IF_ERROR(ctx->ReplayCreation(creation->ctor_args, {}));
  }
  sim->metrics()
      .GetCounter("phoenix.recovery.cold_starts",
                  obs::LabelSet{{"process", label}})
      .Increment();
  sim->tracer().Instant("recovery", "cold_start", label,
                        {obs::Arg("contexts_restored_from_state",
                                  stats_.contexts_restored_from_state),
                         obs::Arg("creations_replayed",
                                  stats_.creations_replayed)});
  return Status::OK();
}

Status RecoveryManager::FlushAllPendingOldestFirst() {
  Process& proc = *process_;
  Status result = Status::OK();
  while (result.ok() && !pending_.empty()) {
    uint64_t best_ctx = 0;
    uint64_t best_order = kInvalidLsn;
    for (const auto& [context_id, unit] : pending_) {
      if (unit.order < best_order) {
        best_order = unit.order;
        best_ctx = context_id;
      }
    }
    result = FlushPending(best_ctx);
    if (!proc.alive()) {
      result = Status::Crashed("process died during recovery replay");
    } else if (result.ok() &&
               proc.MaybeCrash(FailurePoint::kDuringEndOfLogFlush)) {
      result = Status::Crashed("crashed during end-of-log flush");
    }
  }
  return result;
}

bool RecoveryManager::TryParallelPassTwo(uint64_t scan_start,
                                         Status* result) {
  Process& proc = *process_;
  Simulation* sim = proc.simulation();
  std::string label = ProcLabel(&proc);
  obs::LabelSet labels{{"process", label}};

  auto fall_back = [&](PlanFallback why) {
    sim->metrics()
        .GetCounter("phoenix.recovery.replay.fallbacks",
                    obs::LabelSet{{"process", label},
                                  {"reason", PlanFallbackName(why)}})
        .Increment();
    sim->tracer().Instant("recovery", "replay_fallback", label,
                          {obs::Arg("reason", PlanFallbackName(why))});
    return false;
  };

  // A recovery triggered from inside a running session chain (a retry that
  // restarted the server) cannot nest a second scheduler.
  if (sim->session_scheduler() != nullptr) {
    return fall_back(PlanFallback::kNestedScheduler);
  }

  ReplayPlanInputs inputs;
  inputs.machine = proc.machine_name();
  inputs.process_id = proc.pid();
  inputs.replay_call_ms = sim->costs().recovery_replay_call_ms;
  for (const auto& [context_id, info] : infos_) {
    inputs.origins[context_id] = info.recovery_lsn;
    if (proc.log().sharded()) {
      inputs.origin_orders[context_id] = info.recovery_order;
    }
  }

  ReplayPlan plan;
  if (proc.log().sharded()) {
    // The plan is built from the already-materialized merge; unreadable
    // regions (mid-log skips plus each amputated tail, widened to the shard
    // end) demote exactly the chains whose extents they intersect.
    std::vector<SkippedRange> gaps;
    for (const ShardDamage& damage : merged_.damage) {
      for (const SkippedRange& range : damage.skipped) gaps.push_back(range);
      if (damage.tail_torn) {
        gaps.push_back(SkippedRange{
            damage.torn_offset,
            MakeShardLsn(damage.shard,
                         proc.log().shard_stable_end(damage.shard))});
      }
    }
    plan = BuildReplayPlanFromRecords(merged_.records, gaps, scan_start,
                                      inputs);
  } else {
    LogView log = proc.log().StableView();
    plan = BuildReplayPlan(log, scan_start, inputs);
  }
  // The analysis scan is real work whether or not the plan is usable; when
  // it is, it replaces the sequential pass's own scan entirely.
  sim->clock().AdvanceMs(static_cast<double>(plan.records_scanned) *
                         sim->costs().recovery_scan_record_ms);
  if (!plan.parallel_eligible()) return fall_back(plan.fallback);
  stats_.records_scanned += plan.records_scanned;

  if (plan.salvaged) {
    // The log was salvaged but enough chains stayed eligible: parallel
    // replay proceeds, with the demoted chains serialized in log order by
    // the plan's extra edges.
    sim->metrics()
        .GetCounter("phoenix.recovery.replay.salvaged_parallel", labels)
        .Increment();
    sim->metrics()
        .GetCounter("phoenix.recovery.replay.chains_demoted", labels)
        .Increment(plan.demoted_chains);
    sim->tracer().Instant(
        "recovery", "replay_salvage_parallel", label,
        {obs::Arg("skipped_ranges", plan.skipped_ranges),
         obs::Arg("demoted_chains",
                  static_cast<uint64_t>(plan.demoted_chains)),
         obs::Arg("serialization_edges", plan.serialization_edges)});
  }

  uint32_t sessions =
      std::max<uint32_t>(1, sim->options().parallel_replay_sessions);
  sim->metrics()
      .GetCounter("phoenix.recovery.replay.chains", labels)
      .Increment(plan.chains.size());
  sim->metrics()
      .GetCounter("phoenix.recovery.replay.edges", labels)
      .Increment(plan.cross_edges);
  sim->metrics()
      .GetHistogram("phoenix.recovery.replay.critical_path_ms", labels)
      .Record(plan.critical_path_ms);

  obs::Tracer::Span span = sim->tracer().StartSpan(
      "recovery", "parallel_replay", label, RecoveryRoot(sim),
      {obs::Arg("chains", static_cast<uint64_t>(plan.chains.size())),
       obs::Arg("edges", plan.cross_edges),
       obs::Arg("critical_path_ms", plan.critical_path_ms)});
  TraceFrameScope frame(sim, span);

  ParallelReplayEngine engine(&proc, &plan, sessions, span.link(), label);
  Status status = engine.Run(
      [this](uint64_t context_id, PendingReplay unit) {
        return ReplayUnit(context_id, std::move(unit));
      });
  sim->metrics()
      .GetGauge("phoenix.recovery.replay.parallelism", labels)
      .Set(engine.sessions_used());
  sim->metrics()
      .GetHistogram("phoenix.recovery.replay.makespan_ms", labels)
      .Record(engine.makespan_ms());
  span.AddArg(obs::Arg("sessions",
                       static_cast<uint64_t>(engine.sessions_used())));
  span.AddArg(obs::Arg("makespan_ms", engine.makespan_ms()));

  if (status.ok()) {
    // Tail: each chain's final unit is exactly the sequential replayer's
    // end-of-log pending set. Flush oldest first with the demand flusher
    // installed, so a unit that goes live and calls into a context whose
    // tail has not replayed yet forces that unit through first.
    in_pass_two_ = true;
    proc.SetPendingFlusher([this](uint64_t context_id) {
      (void)FlushPending(context_id);
    });
    for (ReplayChain& chain : plan.chains) {
      if (chain.units.empty()) continue;
      pending_[chain.context_id] = std::move(chain.units.back().replay);
    }
    status = FlushAllPendingOldestFirst();
    proc.SetPendingFlusher(nullptr);
    in_pass_two_ = false;
  }
  *result = status;
  return true;
}

Status RecoveryManager::FlushPending(uint64_t context_id) {
  auto it = pending_.find(context_id);
  if (it == pending_.end()) return Status::OK();
  PendingReplay unit = std::move(it->second);
  pending_.erase(it);
  return ReplayUnit(context_id, std::move(unit));
}

Status RecoveryManager::ReplayUnit(uint64_t context_id, PendingReplay unit) {
  Process& proc = *process_;
  Context* ctx = proc.FindContext(context_id);
  if (ctx == nullptr) {
    return Status::Internal(
        StrCat("pending replay for unknown context ", context_id));
  }

  if (unit.is_creation) {
    if (ctx->parent_initialized()) return Status::OK();  // created live
    ++stats_.creations_replayed;
    return ctx->ReplayCreation(unit.creation.ctor_args, std::move(unit.feed));
  }

  ++stats_.calls_replayed;
  Component* parent = ctx->parent();
  PHX_CHECK(parent != nullptr);
  CallMessage msg = MessageFromRecord(unit.incoming, parent->uri());
  Result<ReplyMessage> reply = ctx->ReplayIncoming(msg, std::move(unit.feed));
  if (!reply.ok()) return std::move(reply).status();
  // Condition 5: the reply stays with the recovery manager. The last-call
  // table was updated inside ReplayIncoming; a retrying client will be
  // answered from there.
  return Status::OK();
}

}  // namespace phoenix
