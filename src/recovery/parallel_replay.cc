#include "recovery/parallel_replay.h"

#include <algorithm>
#include <map>

#include "common/macros.h"
#include "runtime/process.h"
#include "runtime/session.h"
#include "runtime/simulation.h"

namespace phoenix {

ParallelReplayEngine::ParallelReplayEngine(Process* process, ReplayPlan* plan,
                                          uint32_t sessions,
                                          obs::SpanLink parent,
                                          std::string label)
    : process_(process),
      plan_(plan),
      sessions_(sessions),
      parent_(parent),
      label_(std::move(label)) {}

void ParallelReplayEngine::BuildTasks() {
  // Every unit but each chain's last is schedulable here; finals go to the
  // caller's sequential tail.
  std::map<UnitRef, size_t> task_of;
  for (uint32_t c = 0; c < plan_->chains.size(); ++c) {
    ReplayChain& chain = plan_->chains[c];
    if (chain.units.size() < 2) continue;
    for (uint32_t u = 0; u + 1 < chain.units.size(); ++u) {
      Task task;
      task.context_id = chain.context_id;
      task.order = chain.units[u].replay.order;
      task.chain = c;
      task.unit = std::move(chain.units[u].replay);
      task_of[UnitRef{c, u}] = tasks_.size();
      tasks_.push_back(std::move(task));
    }
  }
  chain_tasks_left_.assign(plan_->chains.size(), 0);
  chain_spans_.resize(plan_->chains.size());

  for (auto& [ref, t] : task_of) {
    Task& task = tasks_[t];
    ++chain_tasks_left_[ref.chain];
    // Chain order is itself a dependency.
    if (ref.index > 0) {
      auto prev = task_of.find(UnitRef{ref.chain, ref.index - 1});
      PHX_CHECK(prev != task_of.end());
      task.deps.push_back(prev->second);
      tasks_[prev->second].dependents.push_back(t);
    }
    // Cross-chain edges between two schedulable units. Edges touching a
    // final unit are dropped: a final source replays in the tail *after*
    // all of this — the same relative order the sequential replayer's
    // end-of-log flush produces — and a final target is automatically
    // ordered after every task here.
    for (const UnitRef& dep : plan_->unit(ref).deps) {
      auto it = task_of.find(dep);
      if (it == task_of.end()) continue;
      task.deps.push_back(it->second);
      tasks_[it->second].dependents.push_back(t);
    }
    task.unmet = task.deps.size();
  }

  remaining_ = tasks_.size();
  for (size_t t = 0; t < tasks_.size(); ++t) {
    if (tasks_[t].unmet == 0) ready_.insert({tasks_[t].order, t});
  }
}

void ParallelReplayEngine::WorkerLoop(const UnitReplayFn& replay) {
  Process& proc = *process_;
  Simulation* sim = proc.simulation();
  SimClock& clock = sim->clock();
  SessionScheduler* sched = sim->session_scheduler();
  PHX_CHECK(sched != nullptr);

  // All work this chain performs — replayed calls, live functional sends —
  // joins the causal tree under the parallel-replay span.
  bool framed = parent_.trace_id != 0;
  if (framed) sim->Push(parent_);

  for (;;) {
    if (!status_.ok() || !proc.alive()) break;
    if (ready_.empty()) {
      if (remaining_ == 0) break;
      // Every runnable unit is blocked on one another worker still holds;
      // park until a completion refills the frontier (or the run ends).
      sched->ParkUntil([this] {
        return !ready_.empty() || remaining_ == 0 || !status_.ok();
      });
      continue;
    }
    auto it = ready_.begin();
    size_t t = it->second;
    ready_.erase(it);
    Task& task = tasks_[t];

    // List scheduling: run the unit on the lane giving the earliest start
    // (a lane idles until the latest prerequisite finished). Ties go to the
    // *fullest* such lane — a chain successor then lands back on the lane
    // that ran its predecessor instead of lifting a fresh lane up to the
    // chain's time, which would serialize every lane onto one chain.
    double dep_ready = 0.0;
    for (size_t dep : task.deps) {
      dep_ready = std::max(dep_ready, tasks_[dep].finish_abs_ms);
    }
    int lane = 0;
    double best_start = std::max(lane_avail_[0], dep_ready);
    for (size_t l = 1; l < lane_avail_.size(); ++l) {
      double start = std::max(lane_avail_[l], dep_ready);
      if (start < best_start ||
          (start == best_start && lane_avail_[l] > lane_avail_[lane])) {
        lane = static_cast<int>(l);
        best_start = start;
      }
    }
    clock.SetLane(lane);
    clock.AdvanceLaneToMs(dep_ready);

    if (!chain_spans_[task.chain].has_value()) {
      chain_spans_[task.chain] = sim->tracer().StartSpan(
          "recovery", "replay_chain", label_, parent_,
          {obs::Arg("context", task.context_id),
           obs::Arg("units",
                    static_cast<uint64_t>(chain_tasks_left_[task.chain]))});
    }

    Status status = replay(task.context_id, std::move(task.unit));
    if (status.ok() && !proc.alive()) {
      status = Status::Crashed("process died during recovery replay");
    }
    if (!status.ok()) {
      status_ = status;
      break;
    }
    clock.SetLane(lane);  // re-pin: replay may have parked and migrated
    ++units_replayed_;
    if (proc.MaybeCrash(FailurePoint::kBetweenReplayUnits)) {
      status_ = Status::Crashed("crashed between replay units");
      break;
    }
    task.done = true;
    task.finish_abs_ms = clock.NowMs();
    lane_avail_[lane] = task.finish_abs_ms;
    for (size_t d : task.dependents) {
      if (--tasks_[d].unmet == 0) {
        ready_.insert({tasks_[d].order, d});
      }
    }
    --remaining_;
    if (--chain_tasks_left_[task.chain] == 0) {
      chain_spans_[task.chain].reset();  // ends the span at lane time
    }
    // Hand the baton back between units so the session interleaving really
    // overlaps chains (and the seeded scheduler decides the order in which
    // commuting units execute).
    if (remaining_ > 0) {
      sched->ParkUntil([] { return true; });
    }
  }
  if (framed) sim->Pop();
}

Status ParallelReplayEngine::Run(const UnitReplayFn& replay) {
  BuildTasks();
  if (tasks_.empty()) return Status::OK();

  Simulation* sim = process_->simulation();
  sessions_used_ = static_cast<uint32_t>(std::min<size_t>(
      std::max<uint32_t>(sessions_, 1), tasks_.size()));

  sim->clock().BeginParallel(sessions_used_);
  lane_avail_.assign(sessions_used_, sim->clock().NowMs());
  std::vector<std::function<void()>> bodies;
  bodies.reserve(sessions_used_);
  for (uint32_t w = 0; w < sessions_used_; ++w) {
    bodies.push_back([this, &replay] { WorkerLoop(replay); });
  }
  sim->RunSessions(std::move(bodies));
  chain_spans_.clear();  // end any spans a failed run left open
  makespan_ms_ = sim->clock().EndParallel();

  if (status_.ok() && remaining_ != 0) {
    // Workers exited early (process death) without recording a status.
    status_ = Status::Crashed("parallel replay aborted");
  }
  return status_;
}

}  // namespace phoenix
