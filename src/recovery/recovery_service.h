#ifndef PHOENIX_RECOVERY_RECOVERY_SERVICE_H_
#define PHOENIX_RECOVERY_RECOVERY_SERVICE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"

namespace phoenix {

class Machine;
class Process;

// The per-machine recovery service (Figure 4 / §2.4). Processes hosting
// persistent components register at start; the service assigns their
// logical process IDs (stable across failures — they are part of every
// method call ID), force-writes its registration table to stable storage,
// detects abnormal exits, and restarts/recovers dead processes.
class RecoveryService {
 public:
  explicit RecoveryService(Machine* machine);

  RecoveryService(const RecoveryService&) = delete;
  RecoveryService& operator=(const RecoveryService&) = delete;

  // Registers a new process: assigns the next logical pid and durably
  // records it. Returns the pid.
  uint32_t RegisterProcess();

  // Called by Process::Kill so the service learns of the abnormal exit.
  void NotifyCrashed(uint32_t pid);

  // Restarts and recovers `pid` if it is dead (callers' retry paths use
  // this; a real deployment's monitor would do it asynchronously).
  // Returns kNotFound for unknown pids.
  Status EnsureProcessAlive(uint32_t pid);

  // Restarts every dead registered process.
  Status RestartAllDead();

  // Number of dead registered processes.
  int dead_count() const;

  // Reads the durable registration table back (used on machine restart and
  // by tests asserting durability).
  Result<std::map<uint32_t, std::string>> ReadDurableTable() const;

  uint64_t recoveries_performed() const { return recoveries_performed_; }

 private:
  void PersistTable();
  std::string TableFileName() const;

  Machine* machine_;
  // pid -> log name. The durable copy lives in stable storage.
  std::map<uint32_t, std::string> registered_;
  uint32_t next_pid_ = 1;
  uint64_t recoveries_performed_ = 0;
};

}  // namespace phoenix

#endif  // PHOENIX_RECOVERY_RECOVERY_SERVICE_H_
