#ifndef PHOENIX_RECOVERY_RECOVERY_SERVICE_H_
#define PHOENIX_RECOVERY_RECOVERY_SERVICE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"

namespace phoenix {

class Machine;
class Process;

// The per-machine recovery service (Figure 4 / §2.4). Processes hosting
// persistent components register at start; the service assigns their
// logical process IDs (stable across failures — they are part of every
// method call ID), force-writes its registration table to stable storage,
// detects abnormal exits, and restarts/recovers dead processes.
//
// Restarting is supervised: each dead process gets a bounded number of
// recovery attempts per rung of a degradation ladder (normal recovery →
// salvage-assessed recovery → state-record cold start; RecoveryMode in
// recovery_manager.h), with capped-exponential backoff between failed
// attempts and a terminal kUnavailable status when the ladder is exhausted
// — never an unbounded retry loop. Storage attacks registered with the
// failure injector (FailureInjector::AddRecoveryAttack) are applied between
// attempts, so recovery is tested against a disk that keeps rotting under
// it. Per-rung progress is visible as
// phoenix.recovery.supervisor.{attempts,rung,gave_up}.
class RecoveryService {
 public:
  explicit RecoveryService(Machine* machine);

  RecoveryService(const RecoveryService&) = delete;
  RecoveryService& operator=(const RecoveryService&) = delete;

  // Registers a new process: assigns the next logical pid and durably
  // records it. Returns the pid.
  uint32_t RegisterProcess();

  // Called by Process::Kill so the service learns of the abnormal exit.
  void NotifyCrashed(uint32_t pid);

  // Restarts and recovers `pid` if it is dead (callers' retry paths use
  // this; a real deployment's monitor would do it asynchronously).
  // Returns kNotFound for unknown pids.
  Status EnsureProcessAlive(uint32_t pid);

  // Restarts every dead registered process.
  Status RestartAllDead();

  // Number of dead registered processes.
  int dead_count() const;

  // Reads the durable registration table back (used on machine restart and
  // by tests asserting durability).
  Result<std::map<uint32_t, std::string>> ReadDurableTable() const;

  uint64_t recoveries_performed() const { return recoveries_performed_; }

 private:
  // One walk down the degradation ladder for a dead process; returns OK,
  // or the terminal status when every rung is exhausted.
  Status SuperviseRecovery(uint32_t pid, Process* process);
  // Applies the injector's storage attacks scheduled before `attempt`.
  void ApplyRecoveryAttacks(Process* process, uint64_t attempt);
  void PersistTable();
  // Persists only when a registration actually changed the table since the
  // last write; otherwise counts the skipped redundant force.
  void PersistTableIfDirty();
  std::string TableFileName() const;

  Machine* machine_;
  // pid -> log name. The durable copy lives in stable storage.
  std::map<uint32_t, std::string> registered_;
  bool table_dirty_ = false;
  uint32_t next_pid_ = 1;
  uint64_t recoveries_performed_ = 0;
};

}  // namespace phoenix

#endif  // PHOENIX_RECOVERY_RECOVERY_SERVICE_H_
