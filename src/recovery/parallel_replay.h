#ifndef PHOENIX_RECOVERY_PARALLEL_REPLAY_H_
#define PHOENIX_RECOVERY_PARALLEL_REPLAY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/tracer.h"
#include "recovery/replay_plan.h"

namespace phoenix {

class Process;

// Executes the non-final units of a replay plan as overlapping scheduler
// sessions (runtime/session.h): K replay workers pull ready units off a
// shared dependency frontier, parking (SessionScheduler::ParkUntil) when
// every remaining unit is blocked on one still in flight. Elapsed sim time
// is the *makespan* of the overlapped lanes (SimClock parallel region):
// each unit is charged to the earliest-available lane, starting when both
// that lane and the unit's prerequisites are free — classic list
// scheduling, so recovery cost is bounded by max(critical path, work / K)
// instead of total log length. Which session thread happens to execute a
// unit does not enter the timing model; the session interleaving decides
// only the (dependency-legal) execution order.
//
// Only non-final units run here. They are provably complete — the context's
// next incoming record is on the stable log, and the log is written in
// prefix order, so every logged reply the unit needs precedes that record —
// which makes their replay self-contained: outgoing calls are answered from
// the feed (or re-executed against stateless functional components), and
// nothing escapes the process. Complete units of different chains commute;
// dependency edges (and the per-chain order) are honored so the schedule
// and the timing model still follow causality. Each chain's *final* unit —
// the only one that can run into live execution — is left to the caller,
// which replays them with the sequential replayer's end-of-log flush loop
// and demand flusher, preserving the reference semantics exactly.
//
// Determinism: one runnable session at a time, ready units popped in
// replay order, and the scheduler's choice among runnable workers drawn
// from the simulation-seeded PRNG — a given (seed, log) always produces
// the same schedule, lane times and metrics.
class ParallelReplayEngine {
 public:
  // Replays one unit of `context_id` (RecoveryManager::ReplayUnit).
  using UnitReplayFn =
      std::function<Status(uint64_t context_id, PendingReplay unit)>;

  // `plan` must outlive the engine; Run moves the non-final units' replay
  // payloads out of it. `parent` is the span the per-chain spans (and all
  // live work the replay does) nest under; `label` the process label for
  // spans ("machine/pid").
  ParallelReplayEngine(Process* process, ReplayPlan* plan, uint32_t sessions,
                       obs::SpanLink parent, std::string label);

  ParallelReplayEngine(const ParallelReplayEngine&) = delete;
  ParallelReplayEngine& operator=(const ParallelReplayEngine&) = delete;

  Status Run(const UnitReplayFn& replay);

  // Makespan of the parallel region (0 when there was nothing to overlap).
  double makespan_ms() const { return makespan_ms_; }
  uint32_t sessions_used() const { return sessions_used_; }
  uint64_t units_replayed() const { return units_replayed_; }

 private:
  // One schedulable unit: a chain's non-final unit plus dependency state.
  struct Task {
    uint64_t context_id = 0;
    // Replay order of the unit (PendingReplay::order): the start LSN on a
    // single log, the global sequence number on a sharded WAL.
    uint64_t order = 0;
    uint32_t chain = 0;
    PendingReplay unit;
    std::vector<size_t> deps;        // task indices (chain order + edges)
    std::vector<size_t> dependents;  // reverse
    size_t unmet = 0;
    bool done = false;
    double finish_abs_ms = 0.0;  // absolute lane time at completion
  };

  void BuildTasks();
  void WorkerLoop(const UnitReplayFn& replay);

  Process* process_;
  ReplayPlan* plan_;
  uint32_t sessions_;
  obs::SpanLink parent_;
  std::string label_;

  std::vector<Task> tasks_;
  // Absolute time each modelled lane frees up (list-scheduling state).
  std::vector<double> lane_avail_;
  // Dependency frontier, ordered by replay order for deterministic pops.
  std::set<std::pair<uint64_t, size_t>> ready_;
  size_t remaining_ = 0;
  Status status_ = Status::OK();

  // Per-chain span bookkeeping: non-final unit counts and the open span.
  std::vector<size_t> chain_tasks_left_;
  std::vector<std::optional<obs::Tracer::Span>> chain_spans_;

  double makespan_ms_ = 0.0;
  uint32_t sessions_used_ = 0;
  uint64_t units_replayed_ = 0;
};

}  // namespace phoenix

#endif  // PHOENIX_RECOVERY_PARALLEL_REPLAY_H_
