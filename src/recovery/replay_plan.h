#ifndef PHOENIX_RECOVERY_REPLAY_PLAN_H_
#define PHOENIX_RECOVERY_REPLAY_PLAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "recovery/replay.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"
#include "wal/merged_log_reader.h"

namespace phoenix {

// Log-analysis replay planning: one forward scan of the stable log that
// partitions the message records into per-context replay *chains* and links
// them with cross-chain dependency edges, so pass 2 of recovery can execute
// independent chains as overlapping scheduler sessions instead of walking
// the whole log serially (cf. dependency-aware parallel redo in Wu et al.
// and Yao et al.; here the dependency unit is the paper's per-context
// buffered replay call).
//
// Chain model. A chain is one context's replay units in log order — exactly
// the units the sequential replayer buffers (PendingReplay): the creation
// call, then one unit per logged incoming call, each with the reply feed of
// the outgoing calls it made. Units within a chain are totally ordered
// (context state evolves sequentially); that order is implicit and not
// represented as edges.
//
// Edge rule. When an incoming-call record of context B names a *local*
// caller context A (the CallId's ClientKey carries machine / logical pid /
// caller component id, and component id == the caller's context id), the
// planner adds one edge from A's unit that was open at that point in the
// log (the unit whose execution issued the call) to B's new unit. Edges
// therefore always point from a smaller start-LSN unit to a larger one —
// the plan is a DAG by construction, and the edge order coincides with the
// order the sequential replayer flushes those units. Calls from external
// clients or from remote processes add no edge: their effects reach this
// log only through the records already in the chain.
//
// Salvage. When the scan had to salvage-skip unreadable ranges (or the
// tail is torn), the plan stays parallel per-chain instead of refusing
// outright: a chain is demoted (parallel_eligible = false) only when a
// skipped range falls strictly inside one of its units' record extents —
// that unit's reply feed may be missing records, so its replay can go live
// mid-unit and must not overlap freely with the rest. Demoted units are
// serialized against each other in global log order by extra dependency
// edges woven into the plan itself (serialization_edges); clean chains
// still overlap. Records lost to a gap are equally invisible to the
// sequential replayer — both engines replay exactly the readable records —
// so eligibility is about scheduling conservatism, not correctness of
// membership. The plan refuses parallel execution (fallback != kNone) only
// when fewer than two eligible chains remain. The recovery manager adds
// its own runtime condition (recovery triggered from inside a running
// session chain cannot nest a second scheduler).

// Position of one unit inside a plan: chain index + index within the chain.
struct UnitRef {
  uint32_t chain = 0;
  uint32_t index = 0;

  friend bool operator==(const UnitRef&, const UnitRef&) = default;
  friend auto operator<=>(const UnitRef& a, const UnitRef& b) {
    return std::tie(a.chain, a.index) <=> std::tie(b.chain, b.index);
  }
};

// One replay unit plus its cross-chain dependency edges.
struct PlannedUnit {
  PendingReplay replay;
  // Cross-chain units that must replay before this one (edge sources).
  std::vector<UnitRef> deps;
  // Reverse edges (edge targets), filled by the planner.
  std::vector<UnitRef> dependents;
  // LSN of the last record the scan attributed to this unit (the incoming /
  // creation record itself when no reply followed). A salvage gap strictly
  // inside [replay.start_lsn, extent_end_lsn] demotes the unit's chain.
  uint64_t extent_end_lsn = 0;
};

// All replay units of one context, in log order.
struct ReplayChain {
  uint64_t context_id = 0;
  std::vector<PlannedUnit> units;
  // False when a salvage gap intersected one of this chain's unit extents;
  // the chain's units are then serialized in log order against the other
  // demoted chains (see the Salvage paragraph above).
  bool parallel_eligible = true;
};

// Why a plan (or the recovery manager) refused parallel execution.
enum class PlanFallback {
  kNone = 0,
  kSalvagedLog,      // salvage gaps left fewer than two eligible chains
  kTooFewChains,     // fewer than two chains: nothing to overlap
  kNestedScheduler,  // recovery already runs inside a session chain
};

const char* PlanFallbackName(PlanFallback fallback);

struct ReplayPlan {
  std::vector<ReplayChain> chains;  // ordered by first-unit start LSN
  uint64_t cross_edges = 0;
  PlanFallback fallback = PlanFallback::kNone;
  // Records examined by the planning scan (recovery charges its scan cost).
  uint64_t records_scanned = 0;
  // Salvage accounting: the scan skipped unreadable ranges (or found a torn
  // tail), and how the per-chain eligibility check digested that.
  bool salvaged = false;
  uint64_t skipped_ranges = 0;       // gaps the scan salvaged over
  uint32_t demoted_chains = 0;       // chains with parallel_eligible=false
  uint64_t serialization_edges = 0;  // extra log-order edges among demoted
  // Modelled replay cost: sum over all units, and the longest
  // dependency-respecting path (chain order + cross edges) — the lower
  // bound parallel replay is after.
  double total_replay_ms = 0.0;
  double critical_path_ms = 0.0;

  bool parallel_eligible() const { return fallback == PlanFallback::kNone; }
  size_t total_units() const;
  size_t eligible_chains() const;
  const PlannedUnit& unit(UnitRef ref) const {
    return chains[ref.chain].units[ref.index];
  }
};

// What the planner needs to know about the recovering process.
struct ReplayPlanInputs {
  // Identity of the recovering process: calls whose ClientKey carries this
  // machine + logical pid come from a local context and produce edges.
  std::string machine;
  uint32_t process_id = 0;
  // Replay origin LSN per context (pass 1's recovery LSNs): records below a
  // context's origin are covered by its restored state and are not planned.
  // Contexts absent from the map are ignored entirely.
  std::map<uint64_t, uint64_t> origins;
  // Sharded WALs only (BuildReplayPlanFromRecords): the global sequence
  // number of each context's origin record. Composite LSNs of different
  // shards are not comparable, so the record-stream planner filters by
  // order instead of LSN. A context present in `origins` but absent here
  // (or mapped to kInvalidLsn) is planned without a below-origin cut.
  std::map<uint64_t, uint64_t> origin_orders;
  // Modelled cost of replaying one unit (CostModel::recovery_replay_call_ms)
  // for the critical-path estimate.
  double replay_call_ms = 0.13;
};

// Scans `log` once from `scan_start` (salvage-tolerant) and builds the
// chain/edge plan. Pure analysis: never touches the clock, the process or
// any component. Mid-scan damage no longer aborts planning: the scan
// salvages past it and demotes only the chains whose unit extents the
// damage intersected (fallback = kSalvagedLog only when fewer than two
// eligible chains survive).
ReplayPlan BuildReplayPlan(const LogView& log, uint64_t scan_start,
                           const ReplayPlanInputs& inputs);

// Sharded-WAL planner: consumes an already-merged record stream
// (wal/merged_log_reader.h) instead of scanning a single log. Records with
// order < start_order are ignored (they precede the published checkpoint);
// `gaps` carries the per-shard salvage damage in composite coordinates
// (skipped ranges plus torn tails widened to each shard's stable end), so
// the same per-chain demotion rule applies — composite coordinates make a
// gap on shard j provably disjoint from every extent on shard k != j.
// Chain and edge semantics are identical to BuildReplayPlan; all ordering
// (topological cost order, demoted-unit serialization) keys on the global
// sequence number.
ReplayPlan BuildReplayPlanFromRecords(const std::vector<OrderedRecord>& records,
                                      const std::vector<SkippedRange>& gaps,
                                      uint64_t start_order,
                                      const ReplayPlanInputs& inputs);

// Replicates pass 1's replay-origin bookkeeping for callers that have no
// RecoveryManager at hand (tools, tests): newest state record per context,
// else first creation record, refined by checkpoint context entries.
std::map<uint64_t, uint64_t> DeriveReplayOrigins(const LogView& log,
                                                 uint64_t scan_start);

// Merged-stream variant for sharded WALs (tools, tests): the same
// bookkeeping over an ordered record stream, filling both the composite-LSN
// origins and their global-sequence orders (ReplayPlanInputs::origin_orders).
// Upgrade comparisons run in order space — composite LSNs of different
// shards are not comparable. A checkpoint entry whose recovery LSN is not in
// `records` (trimmed below a shard head) never displaces a known origin.
void DeriveReplayOriginsFromRecords(
    const std::vector<OrderedRecord>& records,
    std::map<uint64_t, uint64_t>* origins,
    std::map<uint64_t, uint64_t>* origin_orders);

}  // namespace phoenix

#endif  // PHOENIX_RECOVERY_REPLAY_PLAN_H_
