#ifndef PHOENIX_RECOVERY_REPLAY_H_
#define PHOENIX_RECOVERY_REPLAY_H_

#include <cstdint>
#include <map>

#include "runtime/context.h"
#include "runtime/message.h"
#include "wal/log_record.h"

namespace phoenix {

// One buffered unit of replay for a context (§4.4): either its creation
// call or one incoming method call, plus the logged replies of the outgoing
// calls it made. The recovery manager accumulates these while scanning and
// replays a unit when the next incoming record (or end of log) shows the
// previous call is fully buffered.
struct PendingReplay {
  bool is_creation = false;
  uint64_t start_lsn = 0;
  // Global replay order of the unit's first record: equal to start_lsn on a
  // single log, the frame's global sequence number on a sharded WAL (where
  // composite LSNs of different shards are not comparable). Every ordering
  // decision — end-of-log flush order, plan topological order, the parallel
  // engine's ready queue — keys on this, never on start_lsn.
  uint64_t order = 0;
  IncomingCallRecord incoming;  // valid when !is_creation
  CreationRecord creation;      // valid when is_creation
  ReplayFeed feed;
};

// Rebuilds the CallMessage a logged incoming call was delivered as.
CallMessage MessageFromRecord(const IncomingCallRecord& record,
                              const std::string& target_uri);

}  // namespace phoenix

#endif  // PHOENIX_RECOVERY_REPLAY_H_
