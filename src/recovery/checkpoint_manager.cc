#include "recovery/checkpoint_manager.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"
#include "common/strings.h"
#include "runtime/context.h"
#include "runtime/process.h"
#include "runtime/simulation.h"
#include "wal/force_point.h"
#include "wal/log_reader.h"

namespace phoenix {
namespace {

std::string ProcLabel(Process* proc) {
  return StrCat(proc->machine_name(), "/", proc->pid());
}

}  // namespace

CheckpointManager::CheckpointManager(Process* process) : process_(process) {}

Result<uint64_t> CheckpointManager::SaveContextState(Context& ctx) {
  Process& proc = *process_;
  Simulation* sim = proc.simulation();
  const CostModel& costs = sim->costs();

  if (proc.MaybeCrash(FailurePoint::kDuringStateSave)) {
    return Status::Crashed("crash during context state save");
  }

  ContextStateRecord record;
  record.context_id = ctx.id();
  record.last_outgoing_seq = ctx.last_outgoing_seq();

  // §4.2: replies referenced by this context's last-call entries must be on
  // the log before the state record — after restoring from the state we can
  // no longer recreate them by replay. Entries that already have an LSN
  // from an earlier save are not written again.
  for (auto& [client, entry] : proc.last_calls().EntriesForContext(ctx.id())) {
    if (entry->reply_lsn == kInvalidLsn && entry->reply_in_memory) {
      LastCallReplyRecord reply_record;
      reply_record.context_id = ctx.id();
      reply_record.call_id = CallId{client, entry->seq};
      reply_record.reply = entry->reply;
      reply_record.status_code = entry->status_code;
      entry->reply_lsn = proc.log().Append(reply_record);
    }
    if (entry->reply_lsn != kInvalidLsn) {
      record.last_call_refs.push_back(
          LastCallRef{CallId{client, entry->seq}, entry->reply_lsn});
    }
  }

  record.components = ctx.SnapshotComponents();
  sim->clock().AdvanceMs(costs.state_save_fixed_ms +
                         costs.state_save_per_byte_ms *
                             static_cast<double>(ctx.StateSizeHint()));

  // Not forced: a later send-message force makes it stable (§4.3). Until
  // then recovery falls back to replaying from the previous origin.
  uint64_t lsn = proc.log().Append(record);
  ctx.set_state_record_lsn(lsn);
  ++state_saves_;
  std::string label = ProcLabel(&proc);
  sim->metrics()
      .GetCounter("phoenix.checkpoint.state_saves",
                  obs::LabelSet{{"process", label}})
      .Increment();
  sim->tracer().Instant("checkpoint", "state_save", label, sim->Current(),
                        {obs::Arg("context", static_cast<uint64_t>(ctx.id())),
                         obs::Arg("lsn", lsn)});
  return lsn;
}

void CheckpointManager::OnIncomingCallFinished(Context& ctx) {
  const RuntimeOptions& opts = process_->simulation()->options();
  if (!process_->alive() || process_->recovering()) return;

  if (process_->async_checkpoint_active()) {
    // The background session owns capture: the foreground chain only marks
    // the context dirty. The sweep re-checks §4.2's "not active" rule
    // itself (a context serving a call is deferred), so nothing else from
    // the inline cadence below runs on this chain.
    ++calls_since_save_[ctx.id()];
    return;
  }

  if (opts.save_context_state_every > 0) {
    uint64_t& count = calls_since_save_[ctx.id()];
    if (++count >= opts.save_context_state_every) {
      count = 0;
      // A crash injected during the save surfaces through process death,
      // which the caller observes.
      (void)SaveContextState(ctx);
      if (!process_->alive()) return;
    }
  }
  if (opts.process_checkpoint_every > 0) {
    if (++calls_since_checkpoint_ >= opts.process_checkpoint_every) {
      calls_since_checkpoint_ = 0;
      (void)TakeProcessCheckpoint();
    }
  }
}

Result<uint64_t> CheckpointManager::TakeProcessCheckpoint() {
  Process& proc = *process_;
  Simulation* sim = proc.simulation();
  std::string label = ProcLabel(&proc);
  obs::Tracer::Span span = sim->tracer().StartSpan(
      "checkpoint", "process_checkpoint", label, sim->Current());
  TraceFrameScope trace_frame(sim, span);

  // Begin/end records bracket the table dump so readers can tell a complete
  // checkpoint from one cut short by a crash (§4.3).
  uint64_t begin_lsn = proc.log().Append(BeginCheckpointRecord{});

  if (proc.MaybeCrash(FailurePoint::kDuringCheckpoint)) {
    return Status::Crashed("crash during process checkpoint");
  }

  // Everything the bracket's entries reference must stay pinned against
  // log truncation until a *newer* checkpoint is published — the live
  // context/last-call tables can move past these LSNs while this bracket
  // is still the one recovery would read.
  std::vector<uint64_t> refs;
  for (const auto& [context_id, ctx] : proc.contexts()) {
    CheckpointContextEntryRecord entry;
    entry.context_id = context_id;
    // The activator context (id 0) is rebuilt at process start; records
    // before this checkpoint are already materialized as creation records,
    // so its replay origin moves up to the checkpoint itself.
    entry.recovery_lsn = context_id == 0 ? begin_lsn : ctx->recovery_lsn();
    entry.last_outgoing_seq = ctx->last_outgoing_seq();
    if (entry.recovery_lsn != kInvalidLsn) refs.push_back(entry.recovery_lsn);
    proc.log().Append(entry);
  }

  for (const auto& [key, entry] : proc.last_calls().entries()) {
    CheckpointLastCallRecord record;
    record.context_id = entry.context_id;
    record.call_id = CallId{key.first, entry.seq};
    record.reply_lsn = entry.reply_lsn;
    if (record.reply_lsn != kInvalidLsn) refs.push_back(record.reply_lsn);
    proc.log().Append(record);
  }

  for (const auto& [uri, info] : proc.remote_types().entries()) {
    CheckpointRemoteTypeRecord record;
    record.uri = uri;
    record.kind = info.kind;
    record.type_name = info.type_name;
    proc.log().Append(record);
  }

  uint64_t end_lsn = proc.log().Append(EndCheckpointRecord{begin_lsn});
  pending_begin_lsn_ = begin_lsn;
  pending_end_lsn_ = end_lsn;
  // The bracket lives on the meta shard (the whole log when unsharded).
  // Its publish gate is that log's *own* durable horizon reaching one past
  // the end record — captured here, right after the append, so it covers
  // the end record regardless of how frames pack.
  pending_end_horizon_ =
      proc.log().sharded() ? proc.log().shard_next_lsn(0) : proc.log().next_lsn();
  pending_end_append_ms_ = sim->clock().NowMs();
  pending_ref_lsns_ = std::move(refs);
  ++checkpoints_taken_;
  sim->metrics()
      .GetCounter("phoenix.checkpoint.taken", obs::LabelSet{{"process", label}})
      .Increment();
  span.AddArg(obs::Arg("begin_lsn", begin_lsn));
  span.AddArg(obs::Arg("end_lsn", end_lsn));
  // The buffer may already have spilled (capacity force); publish if so.
  MaybePublishCheckpoint();
  return begin_lsn;
}

void CheckpointManager::MaybePublishCheckpoint() {
  if (pending_begin_lsn_ == kInvalidLsn) return;
  // The gate reads the durable horizon of the log that holds the bracket —
  // on a sharded WAL the meta shard's (shard 0's), which is exactly what
  // LogManager::durable_lsn() reports in both layouts. A composite-LSN
  // IsStable() check through the forcing chain's touched-shard view could
  // answer from the wrong shard's horizon; the horizon captured at the end
  // append cannot.
  if (process_->log().durable_lsn() < pending_end_horizon_) return;
  Simulation* sim = process_->simulation();
  std::string label = ProcLabel(process_);
  if (pending_begin_lsn_ == published_begin_lsn_) {
    // Publish-once latch: this checkpoint is already in the well-known
    // file. Every interceptor force site (and the background sweep) calls
    // in here, so repeats are common and must be no-ops — re-writing the
    // well-known file would re-externalize and re-trigger GC.
    ++publish_skips_;
    sim->metrics()
        .GetCounter("phoenix.checkpoint.publish_skips",
                    obs::LabelSet{{"process", label}})
        .Increment();
    return;
  }
  // §4.3: once the checkpoint is flushed, force the begin LSN into the
  // well-known file; recovery starts its first pass there.
  uint64_t published_lsn = pending_begin_lsn_;
  process_->log().WriteWellKnownLsn(published_lsn);
  // The well-known file now points into the stable checkpoint bracket;
  // recovery depends on those bytes, so a torn tail may no longer eat them.
  process_->NoteExternalization();
  published_begin_lsn_ = published_lsn;
  // The published entries reference these LSNs until the next publish.
  published_ref_lsns_ = pending_ref_lsns_;
  ++checkpoints_published_;
  sim->metrics()
      .GetCounter("phoenix.checkpoint.published",
                  obs::LabelSet{{"process", label}})
      .Increment();
  sim->tracer().Instant("checkpoint", "publish", label, sim->Current(),
                        {obs::Arg("begin_lsn", published_lsn)});
  if (process_->async_checkpoint_active()) {
    sim->metrics()
        .GetCounter("phoenix.checkpoint.async.publishes",
                    obs::LabelSet{{"process", label}})
        .Increment();
    sim->metrics()
        .GetHistogram("phoenix.checkpoint.async.lag_ms",
                      obs::LabelSet{{"process", label}})
        .Record(sim->clock().NowMs() - pending_end_append_ms_);
  }
  if (process_->simulation()->options().auto_truncate_log) {
    GarbageCollect();
  }
}

uint64_t CheckpointManager::ComputeTruncationPoint() const {
  Process& proc = *process_;
  // Nothing is reclaimable before the first published checkpoint: recovery
  // would scan from the very beginning.
  Result<uint64_t> well_known = proc.log().ReadWellKnownLsn();
  if (!well_known.ok()) return proc.log().head_base();

  uint64_t point = *well_known;
  // A checkpoint in flight (taken, not yet published) pins its own bracket
  // and everything its captured entries reference: with async capture the
  // live tables can advance past the captured LSNs before the publish, and
  // recovery may still land on this bracket once it publishes. The
  // *published* bracket's captured refs stay pinned too — its entries keep
  // pointing at them even after the live context saves newer state.
  if (pending_begin_lsn_ != kInvalidLsn) {
    point = std::min(point, pending_begin_lsn_);
  }
  for (uint64_t ref : pending_ref_lsns_) point = std::min(point, ref);
  for (uint64_t ref : published_ref_lsns_) point = std::min(point, ref);
  for (const auto& [context_id, ctx] : proc.contexts()) {
    uint64_t origin = ctx->recovery_lsn();
    if (origin != kInvalidLsn) point = std::min(point, origin);
  }
  for (const auto& [key, entry] : proc.last_calls().entries()) {
    if (entry.reply_lsn != kInvalidLsn) {
      point = std::min(point, entry.reply_lsn);
    }
  }
  return std::max(point, proc.log().head_base());
}

uint64_t CheckpointManager::GarbageCollect() {
  Process& proc = *process_;
  LogManager& log = proc.log();
  Simulation* sim = proc.simulation();
  std::string label = ProcLabel(process_);

  if (log.sharded()) {
    Result<uint64_t> well_known = log.ReadWellKnownLsn();
    if (!well_known.ok()) return 0;
    Result<uint64_t> begin_order = log.OrderOfRecordAt(*well_known);
    if (!begin_order.ok()) return 0;

    // Each constraint pins only the shard its record lives on; a shard's
    // cut is the minimum pinned local offset there. kInvalidLsn marks a
    // shard no constraint touches.
    std::vector<uint64_t> point(log.shard_count(), kInvalidLsn);
    auto pin = [&](uint64_t lsn) {
      if (lsn == kInvalidLsn) return;
      uint32_t s = ShardOfLsn(lsn);
      point[s] = std::min(point[s], LocalOfLsn(lsn));
    };
    pin(*well_known);  // the checkpoint bracket itself, on shard 0
    // Same in-flight/published pins as ComputeTruncationPoint, per shard:
    // composite LSNs cannot be min'd across shards, so every captured ref
    // pins individually.
    pin(pending_begin_lsn_);
    for (uint64_t ref : pending_ref_lsns_) pin(ref);
    for (uint64_t ref : published_ref_lsns_) pin(ref);
    for (const auto& [context_id, ctx] : proc.contexts()) {
      pin(ctx->recovery_lsn());
    }
    for (const auto& [key, entry] : proc.last_calls().entries()) {
      pin(entry.reply_lsn);
    }

    uint64_t reclaimed = 0;
    for (uint32_t s = 0; s < log.shard_count(); ++s) {
      uint64_t cut = std::min(point[s], log.shard_stable_end(s));
      if (point[s] == kInvalidLsn) {
        // Unpinned shard: recovery reads it only from the published
        // checkpoint's global sequence number on — cut at the first record
        // at or past that gsn, the whole stable shard when none is.
        cut = log.shard_stable_end(s);
        LogReader reader(log.ShardStableView(s), log.shard_head_base(s));
        reader.EnableGsnPrefix();
        while (auto parsed = reader.Next()) {
          if (parsed->order >= *begin_order) {
            cut = parsed->lsn;
            break;
          }
        }
      }
      uint64_t before = log.shard_head_base(s);
      if (cut <= before) continue;
      log.TrimShardHead(s, cut);
      reclaimed += cut - before;
      sim->tracer().Instant("checkpoint", "trim", label, sim->Current(),
                            {obs::Arg("shard", static_cast<uint64_t>(s)), obs::Arg("head", cut),
                             obs::Arg("bytes", cut - before)});
    }
    if (reclaimed > 0) {
      sim->metrics()
          .GetCounter("phoenix.checkpoint.bytes_reclaimed",
                      obs::LabelSet{{"process", label}})
          .Increment(reclaimed);
    }
    return reclaimed;
  }

  uint64_t before = log.head_base();
  uint64_t point = ComputeTruncationPoint();
  if (point <= before) return 0;
  log.TrimHead(point);
  uint64_t reclaimed = point - before;
  sim->metrics()
      .GetCounter("phoenix.checkpoint.bytes_reclaimed",
                  obs::LabelSet{{"process", label}})
      .Increment(reclaimed);
  sim->tracer().Instant("checkpoint", "trim", label, sim->Current(),
                        {obs::Arg("head", point), obs::Arg("bytes", reclaimed)});
  return reclaimed;
}

bool CheckpointManager::HasDeferredIdleContext() const {
  for (uint64_t id : deferred_contexts_) {
    Context* ctx = process_->FindContext(id);
    if (ctx == nullptr) continue;  // destroyed since the deferral
    if (!ctx->busy() && !ctx->serving()) return true;
  }
  return false;
}

bool CheckpointManager::AsyncSweepDue(uint32_t interval) const {
  Process& proc = *process_;
  if (!proc.alive() || proc.recovering()) return false;
  // The process-wide incoming-call counter is monotone across restarts, so
  // a call-count cadence stays deterministic under crashes.
  if (proc.incoming_calls() >= last_sweep_incoming_calls_ + interval) {
    return true;
  }
  return HasDeferredIdleContext();
}

Status CheckpointManager::RunAsyncSweep() {
  Process& proc = *process_;
  Simulation* sim = proc.simulation();
  if (!proc.alive() || proc.recovering()) {
    return Status::Unavailable("process not running");
  }
  last_sweep_incoming_calls_ = proc.incoming_calls();
  ++async_sweeps_;
  std::string label = ProcLabel(&proc);
  sim->metrics()
      .GetCounter("phoenix.checkpoint.async.sweeps",
                  obs::LabelSet{{"process", label}})
      .Increment();
  obs::Tracer::Span span =
      sim->tracer().StartSpan("checkpoint", "async_sweep", label, sim->Current());
  TraceFrameScope trace_frame(sim, span);

  // §4.2's "not active" rule, re-checked here because the capturing chain
  // no longer owns the context: only a context with no call in flight may
  // be captured. Busy/serving contexts are deferred — AsyncSweepDue re-arms
  // as soon as one goes idle.
  std::set<uint64_t> deferred;
  uint64_t saved = 0;
  for (const auto& [context_id, ctx] : proc.contexts()) {
    auto dirty = calls_since_save_.find(context_id);
    if (dirty == calls_since_save_.end() || dirty->second == 0) continue;
    if (ctx->busy() || ctx->serving()) {
      deferred.insert(context_id);
      ++async_deferrals_;
      sim->metrics()
          .GetCounter("phoenix.checkpoint.async.deferred",
                      obs::LabelSet{{"process", label}})
          .Increment();
      continue;
    }
    Result<uint64_t> lsn = SaveContextState(*ctx);
    if (!lsn.ok()) return lsn.status();  // injected crash mid-save
    dirty->second = 0;
    ++saved;
  }
  deferred_contexts_ = std::move(deferred);
  span.AddArg(obs::Arg("contexts_saved", saved));
  span.AddArg(
      obs::Arg("contexts_deferred", static_cast<uint64_t>(deferred_contexts_.size())));

  Result<uint64_t> begin = TakeProcessCheckpoint();
  if (!begin.ok()) return std::move(begin).status();
  // §4.3's ordering is unchanged: the bracket went out unforced and the
  // well-known file flips only once the end record is durable. The force
  // that makes it durable runs on this background chain (parking into the
  // group-commit pipeline when one is active), so foreground sends never
  // pay for it.
  PHX_RETURN_IF_ERROR(proc.WaitDurable(ForcePoint::kAsyncCheckpoint));
  MaybePublishCheckpoint();
  return Status::OK();
}

}  // namespace phoenix
