#include "recovery/replay_plan.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace phoenix {

const char* PlanFallbackName(PlanFallback fallback) {
  switch (fallback) {
    case PlanFallback::kNone:
      return "none";
    case PlanFallback::kSalvagedLog:
      return "salvaged_log";
    case PlanFallback::kTooFewChains:
      return "too_few_chains";
    case PlanFallback::kNestedScheduler:
      return "nested_scheduler";
  }
  return "unknown";
}

size_t ReplayPlan::total_units() const {
  size_t n = 0;
  for (const ReplayChain& chain : chains) n += chain.units.size();
  return n;
}

size_t ReplayPlan::eligible_chains() const {
  size_t n = 0;
  for (const ReplayChain& chain : chains) n += chain.parallel_eligible ? 1 : 0;
  return n;
}

namespace {

// Modelled replay cost of the plan: per-unit weight plus the longest
// dependency-respecting path. Units are processed in start-LSN order, which
// is a topological order: chain-internal order and every cross edge point
// from a smaller start LSN to a larger one.
void ComputeCosts(ReplayPlan& plan, double unit_ms) {
  std::vector<std::pair<uint64_t, UnitRef>> order;
  order.reserve(plan.total_units());
  for (uint32_t c = 0; c < plan.chains.size(); ++c) {
    const ReplayChain& chain = plan.chains[c];
    for (uint32_t u = 0; u < chain.units.size(); ++u) {
      order.emplace_back(chain.units[u].replay.start_lsn, UnitRef{c, u});
    }
  }
  std::sort(order.begin(), order.end());

  // finish[chain][index]: earliest completion honoring all ordering.
  std::vector<std::vector<double>> finish(plan.chains.size());
  for (uint32_t c = 0; c < plan.chains.size(); ++c) {
    finish[c].assign(plan.chains[c].units.size(), 0.0);
  }
  double critical = 0.0;
  for (const auto& [lsn, ref] : order) {
    double start = ref.index > 0 ? finish[ref.chain][ref.index - 1] : 0.0;
    for (const UnitRef& dep : plan.unit(ref).deps) {
      start = std::max(start, finish[dep.chain][dep.index]);
    }
    finish[ref.chain][ref.index] = start + unit_ms;
    critical = std::max(critical, finish[ref.chain][ref.index]);
  }
  plan.total_replay_ms = static_cast<double>(plan.total_units()) * unit_ms;
  plan.critical_path_ms = critical;
}

}  // namespace

ReplayPlan BuildReplayPlan(const LogView& log, uint64_t scan_start,
                           const ReplayPlanInputs& inputs) {
  ReplayPlan plan;
  std::map<uint64_t, uint32_t> chain_of;  // context id -> chain index

  // The chain's currently-open unit: the one whose execution covers this
  // point of the log (its last planned unit, units being closed only by the
  // context's next incoming call).
  auto open_ref = [&](uint64_t context_id) -> std::optional<UnitRef> {
    auto it = chain_of.find(context_id);
    if (it == chain_of.end()) return std::nullopt;
    const ReplayChain& chain = plan.chains[it->second];
    if (chain.units.empty()) return std::nullopt;
    return UnitRef{it->second, static_cast<uint32_t>(chain.units.size() - 1)};
  };

  auto push_unit = [&](uint64_t context_id, PendingReplay unit) -> UnitRef {
    auto [it, inserted] =
        chain_of.try_emplace(context_id, static_cast<uint32_t>(
                                             plan.chains.size()));
    if (inserted) {
      plan.chains.push_back(ReplayChain{context_id, {}});
    }
    ReplayChain& chain = plan.chains[it->second];
    uint64_t start_lsn = unit.start_lsn;
    chain.units.push_back(PlannedUnit{std::move(unit), {}, {}, start_lsn});
    return UnitRef{it->second,
                   static_cast<uint32_t>(chain.units.size() - 1)};
  };

  LogReader reader(log, scan_start);
  reader.EnableSalvage();
  while (auto parsed = reader.Next()) {
    ++plan.records_scanned;
    uint64_t lsn = parsed->lsn;

    if (const auto* creation = std::get_if<CreationRecord>(&parsed->record)) {
      auto it = inputs.origins.find(creation->context_id);
      // Only the origin creation record opens a chain; newer duplicates
      // (re-creations appended by a previous recovery) replay nothing.
      if (it == inputs.origins.end() || it->second == kInvalidLsn ||
          lsn != it->second) {
        continue;
      }
      PendingReplay unit;
      unit.is_creation = true;
      unit.start_lsn = lsn;
      unit.creation = *creation;
      push_unit(creation->context_id, std::move(unit));
    } else if (const auto* incoming =
                   std::get_if<IncomingCallRecord>(&parsed->record)) {
      auto it = inputs.origins.find(incoming->context_id);
      if (it == inputs.origins.end()) continue;
      if (it->second != kInvalidLsn && lsn < it->second) continue;

      PendingReplay unit;
      unit.start_lsn = lsn;
      unit.incoming = *incoming;
      UnitRef target = push_unit(incoming->context_id, std::move(unit));

      // Cross-chain edge: the call was issued by a local caller context
      // whose open unit must replay before this one (it is the unit whose
      // execution produced the call). The ClientKey's component id is the
      // caller's context id; external clients and remote processes fail
      // the machine/pid match and contribute no edge.
      const ClientKey& caller = incoming->call_id.caller;
      if (caller.machine == inputs.machine &&
          caller.process_id == inputs.process_id &&
          caller.component_id != incoming->context_id) {
        if (std::optional<UnitRef> source = open_ref(caller.component_id);
            source.has_value() && source->chain != target.chain) {
          plan.chains[target.chain].units[target.index].deps.push_back(
              *source);
          plan.chains[source->chain].units[source->index].dependents
              .push_back(target);
          ++plan.cross_edges;
        }
      }
    } else if (const auto* reply =
                   std::get_if<ReplyReceivedRecord>(&parsed->record)) {
      if (std::optional<UnitRef> ref = open_ref(reply->context_id);
          ref.has_value()) {
        PlannedUnit& unit = plan.chains[ref->chain].units[ref->index];
        unit.replay.feed.replies[reply->seq] = *reply;
        unit.extent_end_lsn = lsn;
      }
    }
    // Other record types were pass 1's business.
  }

  // Salvage digestion: demote every chain with a gap strictly inside one of
  // its unit extents, then serialize the demoted units against each other
  // in global log order via extra edges. A torn tail counts as a gap past
  // the last readable record — it can intersect no unit extent (the extent
  // ends at a record the scan parsed), so a torn tail alone demotes nothing
  // and no longer serializes the whole replay.
  std::vector<SkippedRange> gaps = reader.skipped_ranges();
  if (reader.tail_torn()) {
    gaps.push_back(SkippedRange{reader.torn_offset(),
                                log.base + (log.bytes ? log.bytes->size() : 0)});
  }
  plan.salvaged = !gaps.empty();
  plan.skipped_ranges = gaps.size();
  if (plan.salvaged) {
    for (ReplayChain& chain : plan.chains) {
      for (const PlannedUnit& unit : chain.units) {
        for (const SkippedRange& gap : gaps) {
          if (gap.from_lsn < unit.extent_end_lsn &&
              gap.to_lsn > unit.replay.start_lsn) {
            chain.parallel_eligible = false;
          }
        }
      }
      if (!chain.parallel_eligible) ++plan.demoted_chains;
    }
    if (plan.demoted_chains > 0) {
      std::vector<std::pair<uint64_t, UnitRef>> demoted;
      for (uint32_t c = 0; c < plan.chains.size(); ++c) {
        if (plan.chains[c].parallel_eligible) continue;
        for (uint32_t u = 0; u < plan.chains[c].units.size(); ++u) {
          demoted.emplace_back(plan.chains[c].units[u].replay.start_lsn,
                               UnitRef{c, u});
        }
      }
      std::sort(demoted.begin(), demoted.end());
      for (size_t i = 1; i < demoted.size(); ++i) {
        const UnitRef& source = demoted[i - 1].second;
        const UnitRef& target = demoted[i].second;
        if (source.chain == target.chain) continue;  // chain order covers it
        std::vector<UnitRef>& deps =
            plan.chains[target.chain].units[target.index].deps;
        if (std::find(deps.begin(), deps.end(), source) != deps.end()) {
          continue;
        }
        deps.push_back(source);
        plan.chains[source.chain].units[source.index].dependents.push_back(
            target);
        ++plan.serialization_edges;
      }
    }
  }

  if (plan.salvaged && plan.eligible_chains() < 2) {
    plan.fallback = PlanFallback::kSalvagedLog;
    return plan;
  }
  if (plan.chains.size() < 2) {
    plan.fallback = PlanFallback::kTooFewChains;
  }
  ComputeCosts(plan, inputs.replay_call_ms);
  return plan;
}

std::map<uint64_t, uint64_t> DeriveReplayOrigins(const LogView& log,
                                                 uint64_t scan_start) {
  std::map<uint64_t, uint64_t> origins;
  LogReader reader(log, scan_start);
  reader.EnableSalvage();
  while (auto parsed = reader.Next()) {
    uint64_t lsn = parsed->lsn;
    if (const auto* e =
            std::get_if<CheckpointContextEntryRecord>(&parsed->record)) {
      auto [it, inserted] = origins.try_emplace(e->context_id, kInvalidLsn);
      if (it->second == kInvalidLsn ||
          (e->recovery_lsn != kInvalidLsn && e->recovery_lsn > it->second)) {
        it->second = e->recovery_lsn;
      }
    } else if (const auto* c = std::get_if<CreationRecord>(&parsed->record)) {
      auto [it, inserted] = origins.try_emplace(c->context_id, lsn);
      if (it->second == kInvalidLsn) it->second = lsn;
    } else if (const auto* s =
                   std::get_if<ContextStateRecord>(&parsed->record)) {
      origins[s->context_id] = lsn;
    }
  }
  // The activator context always recovers by replay from the scan start.
  auto [it, inserted] = origins.try_emplace(0, scan_start);
  if (it->second == kInvalidLsn) it->second = scan_start;
  return origins;
}

}  // namespace phoenix
