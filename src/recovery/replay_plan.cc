#include "recovery/replay_plan.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace phoenix {

const char* PlanFallbackName(PlanFallback fallback) {
  switch (fallback) {
    case PlanFallback::kNone:
      return "none";
    case PlanFallback::kSalvagedLog:
      return "salvaged_log";
    case PlanFallback::kTooFewChains:
      return "too_few_chains";
    case PlanFallback::kNestedScheduler:
      return "nested_scheduler";
  }
  return "unknown";
}

size_t ReplayPlan::total_units() const {
  size_t n = 0;
  for (const ReplayChain& chain : chains) n += chain.units.size();
  return n;
}

size_t ReplayPlan::eligible_chains() const {
  size_t n = 0;
  for (const ReplayChain& chain : chains) n += chain.parallel_eligible ? 1 : 0;
  return n;
}

namespace {

// Modelled replay cost of the plan: per-unit weight plus the longest
// dependency-respecting path. Units are processed in replay order (== start
// LSN on a single log, global sequence number on a sharded one), which is a
// topological order: chain-internal order and every cross edge point from a
// smaller order to a larger one. Start LSNs are NOT usable here — composite
// LSNs of different shards compare by shard id, not by append order.
void ComputeCosts(ReplayPlan& plan, double unit_ms) {
  std::vector<std::pair<uint64_t, UnitRef>> order;
  order.reserve(plan.total_units());
  for (uint32_t c = 0; c < plan.chains.size(); ++c) {
    const ReplayChain& chain = plan.chains[c];
    for (uint32_t u = 0; u < chain.units.size(); ++u) {
      order.emplace_back(chain.units[u].replay.order, UnitRef{c, u});
    }
  }
  std::sort(order.begin(), order.end());

  // finish[chain][index]: earliest completion honoring all ordering.
  std::vector<std::vector<double>> finish(plan.chains.size());
  for (uint32_t c = 0; c < plan.chains.size(); ++c) {
    finish[c].assign(plan.chains[c].units.size(), 0.0);
  }
  double critical = 0.0;
  for (const auto& [lsn, ref] : order) {
    double start = ref.index > 0 ? finish[ref.chain][ref.index - 1] : 0.0;
    for (const UnitRef& dep : plan.unit(ref).deps) {
      start = std::max(start, finish[dep.chain][dep.index]);
    }
    finish[ref.chain][ref.index] = start + unit_ms;
    critical = std::max(critical, finish[ref.chain][ref.index]);
  }
  plan.total_replay_ms = static_cast<double>(plan.total_units()) * unit_ms;
  plan.critical_path_ms = critical;
}

// Incremental chain/edge construction shared by the single-log scan and the
// sharded record-stream planner. `order` is the record's replay order: the
// LSN itself on a single log, the global sequence number on a sharded WAL.
class PlanBuilder {
 public:
  PlanBuilder(ReplayPlan& plan, const ReplayPlanInputs& inputs,
              bool order_origins)
      : plan_(plan), inputs_(inputs), order_origins_(order_origins) {}

  void OnCreation(uint64_t lsn, uint64_t order, const CreationRecord& rec) {
    // Only the origin creation record opens a chain; newer duplicates
    // (re-creations appended by a previous recovery) replay nothing.
    if (order_origins_) {
      auto it = inputs_.origin_orders.find(rec.context_id);
      if (it == inputs_.origin_orders.end() || it->second == kInvalidLsn ||
          order != it->second) {
        return;
      }
    } else {
      auto it = inputs_.origins.find(rec.context_id);
      if (it == inputs_.origins.end() || it->second == kInvalidLsn ||
          lsn != it->second) {
        return;
      }
    }
    PendingReplay unit;
    unit.is_creation = true;
    unit.start_lsn = lsn;
    unit.order = order;
    unit.creation = rec;
    PushUnit(rec.context_id, std::move(unit));
  }

  void OnIncoming(uint64_t lsn, uint64_t order,
                  const IncomingCallRecord& rec) {
    if (order_origins_) {
      if (inputs_.origins.find(rec.context_id) == inputs_.origins.end()) {
        return;
      }
      auto it = inputs_.origin_orders.find(rec.context_id);
      if (it != inputs_.origin_orders.end() && it->second != kInvalidLsn &&
          order < it->second) {
        return;
      }
    } else {
      auto it = inputs_.origins.find(rec.context_id);
      if (it == inputs_.origins.end()) return;
      if (it->second != kInvalidLsn && lsn < it->second) return;
    }

    PendingReplay unit;
    unit.start_lsn = lsn;
    unit.order = order;
    unit.incoming = rec;
    UnitRef target = PushUnit(rec.context_id, std::move(unit));

    // Cross-chain edge: the call was issued by a local caller context
    // whose open unit must replay before this one (it is the unit whose
    // execution produced the call). The ClientKey's component id is the
    // caller's context id; external clients and remote processes fail
    // the machine/pid match and contribute no edge.
    const ClientKey& caller = rec.call_id.caller;
    if (caller.machine == inputs_.machine &&
        caller.process_id == inputs_.process_id &&
        caller.component_id != rec.context_id) {
      if (std::optional<UnitRef> source = OpenRef(caller.component_id);
          source.has_value() && source->chain != target.chain) {
        plan_.chains[target.chain].units[target.index].deps.push_back(
            *source);
        plan_.chains[source->chain].units[source->index].dependents
            .push_back(target);
        ++plan_.cross_edges;
      }
    }
  }

  void OnReply(uint64_t lsn, const ReplyReceivedRecord& rec) {
    if (std::optional<UnitRef> ref = OpenRef(rec.context_id);
        ref.has_value()) {
      PlannedUnit& unit = plan_.chains[ref->chain].units[ref->index];
      unit.replay.feed.replies[rec.seq] = rec;
      unit.extent_end_lsn = lsn;
    }
  }

 private:
  // The chain's currently-open unit: the one whose execution covers this
  // point of the log (its last planned unit, units being closed only by the
  // context's next incoming call).
  std::optional<UnitRef> OpenRef(uint64_t context_id) const {
    auto it = chain_of_.find(context_id);
    if (it == chain_of_.end()) return std::nullopt;
    const ReplayChain& chain = plan_.chains[it->second];
    if (chain.units.empty()) return std::nullopt;
    return UnitRef{it->second, static_cast<uint32_t>(chain.units.size() - 1)};
  }

  UnitRef PushUnit(uint64_t context_id, PendingReplay unit) {
    auto [it, inserted] =
        chain_of_.try_emplace(context_id, static_cast<uint32_t>(
                                              plan_.chains.size()));
    if (inserted) {
      plan_.chains.push_back(ReplayChain{context_id, {}});
    }
    ReplayChain& chain = plan_.chains[it->second];
    uint64_t start_lsn = unit.start_lsn;
    chain.units.push_back(PlannedUnit{std::move(unit), {}, {}, start_lsn});
    return UnitRef{it->second,
                   static_cast<uint32_t>(chain.units.size() - 1)};
  }

  ReplayPlan& plan_;
  const ReplayPlanInputs& inputs_;
  // Sharded mode: below-origin filtering compares global sequence numbers
  // (inputs.origin_orders) instead of LSNs.
  bool order_origins_;
  std::map<uint64_t, uint32_t> chain_of_;  // context id -> chain index
};

// Salvage digestion: demote every chain with a gap strictly inside one of
// its unit extents, then serialize the demoted units against each other
// in global replay order via extra edges. A torn tail counts as a gap past
// the last readable record — it can intersect no unit extent (the extent
// ends at a record the scan parsed), so a torn tail alone demotes nothing
// and no longer serializes the whole replay. Gap and extent coordinates
// live in the same space (plain LSNs on one log, composite LSNs sharded —
// where shard bits make cross-shard intersections provably empty), but the
// serialization sort keys on the units' replay order.
void DigestSalvageAndFinalize(ReplayPlan& plan,
                              const std::vector<SkippedRange>& gaps,
                              double replay_call_ms) {
  plan.salvaged = !gaps.empty();
  plan.skipped_ranges = gaps.size();
  if (plan.salvaged) {
    for (ReplayChain& chain : plan.chains) {
      for (const PlannedUnit& unit : chain.units) {
        for (const SkippedRange& gap : gaps) {
          if (gap.from_lsn < unit.extent_end_lsn &&
              gap.to_lsn > unit.replay.start_lsn) {
            chain.parallel_eligible = false;
          }
        }
      }
      if (!chain.parallel_eligible) ++plan.demoted_chains;
    }
    if (plan.demoted_chains > 0) {
      std::vector<std::pair<uint64_t, UnitRef>> demoted;
      for (uint32_t c = 0; c < plan.chains.size(); ++c) {
        if (plan.chains[c].parallel_eligible) continue;
        for (uint32_t u = 0; u < plan.chains[c].units.size(); ++u) {
          demoted.emplace_back(plan.chains[c].units[u].replay.order,
                               UnitRef{c, u});
        }
      }
      std::sort(demoted.begin(), demoted.end());
      for (size_t i = 1; i < demoted.size(); ++i) {
        const UnitRef& source = demoted[i - 1].second;
        const UnitRef& target = demoted[i].second;
        if (source.chain == target.chain) continue;  // chain order covers it
        std::vector<UnitRef>& deps =
            plan.chains[target.chain].units[target.index].deps;
        if (std::find(deps.begin(), deps.end(), source) != deps.end()) {
          continue;
        }
        deps.push_back(source);
        plan.chains[source.chain].units[source.index].dependents.push_back(
            target);
        ++plan.serialization_edges;
      }
    }
  }

  if (plan.salvaged && plan.eligible_chains() < 2) {
    plan.fallback = PlanFallback::kSalvagedLog;
    return;
  }
  if (plan.chains.size() < 2) {
    plan.fallback = PlanFallback::kTooFewChains;
  }
  ComputeCosts(plan, replay_call_ms);
}

}  // namespace

ReplayPlan BuildReplayPlan(const LogView& log, uint64_t scan_start,
                           const ReplayPlanInputs& inputs) {
  ReplayPlan plan;
  PlanBuilder builder(plan, inputs, /*order_origins=*/false);

  LogReader reader(log, scan_start);
  reader.EnableSalvage();
  while (auto parsed = reader.Next()) {
    ++plan.records_scanned;
    uint64_t lsn = parsed->lsn;
    if (const auto* creation = std::get_if<CreationRecord>(&parsed->record)) {
      builder.OnCreation(lsn, /*order=*/lsn, *creation);
    } else if (const auto* incoming =
                   std::get_if<IncomingCallRecord>(&parsed->record)) {
      builder.OnIncoming(lsn, /*order=*/lsn, *incoming);
    } else if (const auto* reply =
                   std::get_if<ReplyReceivedRecord>(&parsed->record)) {
      builder.OnReply(lsn, *reply);
    }
    // Other record types were pass 1's business.
  }

  std::vector<SkippedRange> gaps = reader.skipped_ranges();
  if (reader.tail_torn()) {
    gaps.push_back(SkippedRange{reader.torn_offset(),
                                log.base + (log.bytes ? log.bytes->size() : 0)});
  }
  DigestSalvageAndFinalize(plan, gaps, inputs.replay_call_ms);
  return plan;
}

ReplayPlan BuildReplayPlanFromRecords(const std::vector<OrderedRecord>& records,
                                      const std::vector<SkippedRange>& gaps,
                                      uint64_t start_order,
                                      const ReplayPlanInputs& inputs) {
  ReplayPlan plan;
  PlanBuilder builder(plan, inputs, /*order_origins=*/true);

  for (const OrderedRecord& rec : records) {
    if (rec.order < start_order) continue;
    ++plan.records_scanned;
    if (const auto* creation = std::get_if<CreationRecord>(&rec.record)) {
      builder.OnCreation(rec.lsn, rec.order, *creation);
    } else if (const auto* incoming =
                   std::get_if<IncomingCallRecord>(&rec.record)) {
      builder.OnIncoming(rec.lsn, rec.order, *incoming);
    } else if (const auto* reply =
                   std::get_if<ReplyReceivedRecord>(&rec.record)) {
      builder.OnReply(rec.lsn, *reply);
    }
  }

  DigestSalvageAndFinalize(plan, gaps, inputs.replay_call_ms);
  return plan;
}

std::map<uint64_t, uint64_t> DeriveReplayOrigins(const LogView& log,
                                                 uint64_t scan_start) {
  std::map<uint64_t, uint64_t> origins;
  LogReader reader(log, scan_start);
  reader.EnableSalvage();
  while (auto parsed = reader.Next()) {
    uint64_t lsn = parsed->lsn;
    if (const auto* e =
            std::get_if<CheckpointContextEntryRecord>(&parsed->record)) {
      auto [it, inserted] = origins.try_emplace(e->context_id, kInvalidLsn);
      if (it->second == kInvalidLsn ||
          (e->recovery_lsn != kInvalidLsn && e->recovery_lsn > it->second)) {
        it->second = e->recovery_lsn;
      }
    } else if (const auto* c = std::get_if<CreationRecord>(&parsed->record)) {
      auto [it, inserted] = origins.try_emplace(c->context_id, lsn);
      if (it->second == kInvalidLsn) it->second = lsn;
    } else if (const auto* s =
                   std::get_if<ContextStateRecord>(&parsed->record)) {
      origins[s->context_id] = lsn;
    }
  }
  // The activator context always recovers by replay from the scan start.
  auto [it, inserted] = origins.try_emplace(0, scan_start);
  if (it->second == kInvalidLsn) it->second = scan_start;
  return origins;
}

void DeriveReplayOriginsFromRecords(
    const std::vector<OrderedRecord>& records,
    std::map<uint64_t, uint64_t>* origins,
    std::map<uint64_t, uint64_t>* origin_orders) {
  std::map<uint64_t, uint64_t> order_of;
  for (const OrderedRecord& rec : records) order_of[rec.lsn] = rec.order;
  auto order_or_invalid = [&order_of](uint64_t lsn) {
    auto it = order_of.find(lsn);
    return it == order_of.end() ? kInvalidLsn : it->second;
  };
  auto set = [&](uint64_t context_id, uint64_t lsn, uint64_t order) {
    (*origins)[context_id] = lsn;
    (*origin_orders)[context_id] = order;
  };
  for (const OrderedRecord& rec : records) {
    if (const auto* e =
            std::get_if<CheckpointContextEntryRecord>(&rec.record)) {
      uint64_t entry_order = e->recovery_lsn == kInvalidLsn
                                 ? kInvalidLsn
                                 : order_or_invalid(e->recovery_lsn);
      auto it = origins->find(e->context_id);
      if (it == origins->end()) {
        set(e->context_id, e->recovery_lsn, entry_order);
      } else if (it->second == kInvalidLsn ||
                 (entry_order != kInvalidLsn &&
                  ((*origin_orders)[e->context_id] == kInvalidLsn ||
                   entry_order > (*origin_orders)[e->context_id]))) {
        set(e->context_id, e->recovery_lsn, entry_order);
      }
    } else if (const auto* c = std::get_if<CreationRecord>(&rec.record)) {
      auto it = origins->find(c->context_id);
      if (it == origins->end() || it->second == kInvalidLsn) {
        set(c->context_id, rec.lsn, rec.order);
      }
    } else if (const auto* s = std::get_if<ContextStateRecord>(&rec.record)) {
      set(s->context_id, rec.lsn, rec.order);
    }
  }
  // The activator context always recovers by replay from the scan start.
  uint64_t start_lsn = records.empty() ? kInvalidLsn : records.front().lsn;
  uint64_t start_order = records.empty() ? 0 : records.front().order;
  auto it = origins->find(0);
  if (it == origins->end() || it->second == kInvalidLsn) {
    set(0, start_lsn, start_order);
  }
}

}  // namespace phoenix
