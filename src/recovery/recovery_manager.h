#ifndef PHOENIX_RECOVERY_RECOVERY_MANAGER_H_
#define PHOENIX_RECOVERY_RECOVERY_MANAGER_H_

#include <cstdint>
#include <map>

#include "common/result.h"
#include "recovery/replay.h"
#include "recovery/replay_plan.h"
#include "runtime/last_call_table.h"
#include "runtime/remote_type_table.h"
#include "wal/log_record.h"
#include "wal/merged_log_reader.h"

namespace phoenix {

class Process;

// Two-pass crash recovery of a process (§4.4).
//
// Pass 1 scans from the published checkpoint (well-known-file LSN; the whole
// log when none) to the end, collecting every context that existed at the
// crash with its newest state-record/creation LSN, plus the checkpointed
// global tables. Contexts with state records are then restored field by
// field.
//
// Pass 2 scans from the minimum recovery LSN, buffering each context's
// message records per incoming call and replaying a call once the next
// incoming record arrives; outgoing calls are answered from the buffered
// replies and suppressed (Figure 5). The final buffered call of each
// context replays last and may run into live execution when a logged reply
// is missing — its outgoing calls then really go out, with the same
// deterministic IDs, and the servers eliminate duplicates. Replies of
// replayed calls go to the recovery manager, never to clients
// (condition 5).
// Recovers a single failed context (§4.4's "easier" case): the process and
// its tables survive, only `context_id`'s component instances were lost
// (Context::ClearMembers). The state record LSN is read from the surviving
// context table entry, the state (or blank creation) is restored, and the
// context's records — including the still-buffered unforced tail, which a
// context failure does not lose — are replayed.
Status RecoverContextFailure(Process* process, uint64_t context_id);

// How aggressively a recovery attempt degrades, one value per rung of the
// recovery supervisor's ladder (recovery_service.h). Normal recovery trusts
// the published checkpoint pointer and replays everything; salvage-assessed
// recovery distrusts the well-known file and rebuilds from a full scan of
// the retained log; cold start reinstates the newest durable context states
// only and abandons message replay — lost work in exchange for a process
// that serves again.
enum class RecoveryMode : int {
  kNormal = 0,
  kSalvageAssessed = 1,
  kColdStart = 2,
};

const char* RecoveryModeName(RecoveryMode mode);

class RecoveryManager {
 public:
  explicit RecoveryManager(Process* process,
                           RecoveryMode mode = RecoveryMode::kNormal);

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  Status Recover();

  struct Stats {
    uint64_t records_scanned = 0;
    uint64_t calls_replayed = 0;
    uint64_t creations_replayed = 0;
    uint64_t contexts_restored_from_state = 0;
    uint64_t contexts_found = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  // Per-context facts gathered in pass 1.
  struct ContextInfo {
    uint64_t recovery_lsn = kInvalidLsn;
    // Sharded WAL only: the global sequence number of the origin record.
    // Composite LSNs of different shards compare by shard id, so every
    // cross-context ordering decision (scan cuts, below-origin filtering)
    // uses this instead of recovery_lsn. kInvalidLsn on a single log.
    uint64_t recovery_order = kInvalidLsn;
    uint64_t checkpoint_last_outgoing_seq = 0;
    bool restored_from_state = false;
  };

  // Damage assessment before the costed passes: validates the well-known
  // LSN (falling back to a full scan from the head base when it is corrupt
  // or dangling), physically amputates a torn stable tail, and falls back
  // to a full scan when unreadable mid-log regions could hide checkpoint
  // table records. Returns the (possibly lowered) scan start. Every
  // degradation decision emits a phoenix.recovery.salvage.* metric and a
  // tracer instant.
  uint64_t AssessAndSalvageLog();
  // Sharded-WAL equivalent: per-shard damage probes and torn-tail
  // amputation, well-known-file validation against shard 0, then one
  // materialized k-way merge of all shards by global sequence number
  // (stored in merged_, with an lsn -> order index). Returns the scan-start
  // *order* — the begin-checkpoint record's gsn, or 0 for a full scan.
  uint64_t AssessAndSalvageShardedLog();

  Status PassOne(uint64_t start_lsn);
  // Pass 1 over the merged record stream, processing records with
  // order >= start_order. Same handlers and costs as PassOne; origin
  // bookkeeping additionally tracks each origin's global sequence number.
  Status PassOneSharded(uint64_t start_order);
  Status RestoreContextStates();
  // Restores one context from the record at info.recovery_lsn; kCorruption
  // when the record is unreadable or of the wrong type.
  Status RestoreOneContext(uint64_t context_id, ContextInfo& info);
  // Salvage: newest readable replay origin for `context_id` strictly below
  // `bad_lsn` — a state record if one survives, else the creation record;
  // kInvalidLsn when neither is readable.
  uint64_t FindFallbackOrigin(uint64_t context_id, uint64_t bad_lsn);
  void InstallTables();
  Status PassTwo();
  // Pass 2 over the merged record stream: identical buffering/flush logic,
  // with below-origin filtering by global sequence number (same-context
  // records share a shard, but origins and records of different contexts
  // do not).
  Status PassTwoSharded();
  // Plan-driven parallel pass 2 (recovery/replay_plan.h), attempted when
  // RuntimeOptions.parallel_replay is on: builds the chain/edge plan,
  // replays non-final units as overlapping sessions, then runs the
  // sequential end-of-log flush over each chain's final unit. Returns true
  // when it ran to a decision (*result holds the status); false to fall
  // back to the sequential scan (ambiguous salvaged log, nested scheduler,
  // or fewer than two chains).
  // `scan_start` is an LSN on a single log, a global sequence number on a
  // sharded one (the plan is then built from the merged record stream).
  bool TryParallelPassTwo(uint64_t scan_start, Status* result);
  // Order of the merged-scan record at composite `lsn` (kInvalidLsn when
  // the record is not in the merged stream — damaged or truncated away).
  uint64_t OrderOfLsn(uint64_t lsn) const;
  // Cold-start replacement for pass 2 (RecoveryMode::kColdStart): replays
  // only the creation of contexts with no saved state so components
  // initialize; every logged message after the origins is abandoned.
  Status ColdStartPassTwo();
  // End-of-log replay: flushes every pending unit, oldest start LSN first.
  Status FlushAllPendingOldestFirst();
  // Replays (and removes) the pending unit of `context_id`, if any.
  Status FlushPending(uint64_t context_id);
  Status ReplayUnit(uint64_t context_id, PendingReplay unit);

  Process* process_;
  RecoveryMode mode_;
  Stats stats_;
  // Sharded WAL only: the materialized merge of all shard logs by global
  // sequence number, and the composite-lsn -> order index over it.
  MergedLogScan merged_;
  std::map<uint64_t, uint64_t> order_of_lsn_;
  std::map<uint64_t, ContextInfo> infos_;
  std::map<LastCallTable::Key, LastCallEntry> rebuilt_last_calls_;
  std::map<std::string, RemoteTypeInfo> rebuilt_remote_types_;
  std::map<uint64_t, PendingReplay> pending_;
  bool in_pass_two_ = false;
};

}  // namespace phoenix

#endif  // PHOENIX_RECOVERY_RECOVERY_MANAGER_H_
