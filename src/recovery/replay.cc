#include "recovery/replay.h"

namespace phoenix {

CallMessage MessageFromRecord(const IncomingCallRecord& record,
                              const std::string& target_uri) {
  CallMessage msg;
  msg.target_uri = target_uri;
  msg.method = record.method;
  msg.args = record.args;
  if (!record.call_id.caller.machine.empty() || record.call_id.seq != 0 ||
      record.client_kind != ComponentKind::kExternal) {
    // External callers carry no ID (an empty caller key marks them).
    msg.has_call_id = record.client_kind != ComponentKind::kExternal;
    msg.call_id = record.call_id;
  }
  if (record.client_kind != ComponentKind::kExternal) {
    msg.has_sender_info = true;
    msg.sender_kind = record.client_kind;
  }
  return msg;
}

}  // namespace phoenix
