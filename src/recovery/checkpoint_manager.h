#ifndef PHOENIX_RECOVERY_CHECKPOINT_MANAGER_H_
#define PHOENIX_RECOVERY_CHECKPOINT_MANAGER_H_

#include <cstdint>
#include <map>

#include "common/result.h"
#include "wal/log_record.h"

namespace phoenix {

class Context;
class Process;

// Implements Section 4's checkpointing: context state records (§4.2) and
// process checkpoints (§4.3). Neither is forced — a later send-message
// force makes them stable; once the end-checkpoint record is stable the LSN
// of the begin record is force-written to the well-known file.
class CheckpointManager {
 public:
  explicit CheckpointManager(Process* process);

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  // Saves `ctx`'s state now: first writes LastCallReplyRecords for any
  // last-call entries of this context whose replies are not yet on the log
  // (filling in their LSNs), then appends the ContextStateRecord and
  // updates the context table entry. Returns the state record's LSN.
  Result<uint64_t> SaveContextState(Context& ctx);

  // Called by the interceptor when `ctx` finishes an incoming call (the
  // "not active" moment of §4.2); saves state every
  // options.save_context_state_every calls.
  void OnIncomingCallFinished(Context& ctx);

  // Takes a process checkpoint: begin record, context table entries,
  // last-call entries, remote component types, end record. Returns the
  // begin record's LSN.
  Result<uint64_t> TakeProcessCheckpoint();

  // Publishes the pending checkpoint to the well-known file once its end
  // record has been flushed (called after forces). With
  // options.auto_truncate_log set, a publish also garbage-collects the log
  // head.
  void MaybePublishCheckpoint();

  // Log truncation (an engineering necessity checkpoints enable, though the
  // paper stops short of it): everything below the returned LSN can never
  // be read again — it is below the published checkpoint, below every
  // context's recovery LSN, and below every live last-call reply record.
  // Single-log only; the sharded path computes per-shard points instead.
  uint64_t ComputeTruncationPoint() const;

  // Trims the log head to the truncation point — per shard on a sharded
  // WAL, where each shard's point is the minimum local offset any
  // constraint pins on *that* shard (a shard no constraint touches trims
  // up to the published checkpoint's global sequence number). Returns
  // bytes reclaimed, summed across shards.
  uint64_t GarbageCollect();

  // --- statistics ---
  uint64_t state_saves() const { return state_saves_; }
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  uint64_t checkpoints_published() const { return checkpoints_published_; }

 private:
  Process* process_;
  uint64_t pending_begin_lsn_ = kInvalidLsn;
  uint64_t pending_end_lsn_ = kInvalidLsn;
  std::map<uint64_t, uint64_t> calls_since_save_;  // context id -> count
  uint64_t calls_since_checkpoint_ = 0;
  uint64_t state_saves_ = 0;
  uint64_t checkpoints_taken_ = 0;
  uint64_t checkpoints_published_ = 0;
};

}  // namespace phoenix

#endif  // PHOENIX_RECOVERY_CHECKPOINT_MANAGER_H_
