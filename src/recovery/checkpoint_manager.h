#ifndef PHOENIX_RECOVERY_CHECKPOINT_MANAGER_H_
#define PHOENIX_RECOVERY_CHECKPOINT_MANAGER_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/result.h"
#include "wal/log_record.h"

namespace phoenix {

class Context;
class Process;

// Implements Section 4's checkpointing: context state records (§4.2) and
// process checkpoints (§4.3). Neither is forced — a later send-message
// force makes them stable; once the end-checkpoint record is stable the LSN
// of the begin record is force-written to the well-known file.
class CheckpointManager {
 public:
  explicit CheckpointManager(Process* process);

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  // Saves `ctx`'s state now: first writes LastCallReplyRecords for any
  // last-call entries of this context whose replies are not yet on the log
  // (filling in their LSNs), then appends the ContextStateRecord and
  // updates the context table entry. Returns the state record's LSN.
  Result<uint64_t> SaveContextState(Context& ctx);

  // Called by the interceptor when `ctx` finishes an incoming call (the
  // "not active" moment of §4.2); saves state every
  // options.save_context_state_every calls.
  void OnIncomingCallFinished(Context& ctx);

  // Takes a process checkpoint: begin record, context table entries,
  // last-call entries, remote component types, end record. Returns the
  // begin record's LSN.
  Result<uint64_t> TakeProcessCheckpoint();

  // Publishes the pending checkpoint to the well-known file once its end
  // record is inside the durable horizon of the log that holds it — on a
  // sharded WAL that is the *meta shard's* (shard 0's) horizon, never the
  // forcing chain's touched-shard view. Invoked from every interceptor
  // force site and after checkpoint capture; a publish-once latch keyed by
  // the begin LSN makes the repeat invocations no-ops (counted in
  // phoenix.checkpoint.publish_skips). With options.auto_truncate_log set,
  // a publish also garbage-collects the log head.
  void MaybePublishCheckpoint();

  // --- asynchronous checkpointing (RuntimeOptions.async_checkpoint) ---

  // True when the background checkpoint session owes this process a sweep:
  // `interval` incoming calls completed since the last sweep, or a context
  // deferred by the last sweep (it was serving a call) has gone idle.
  // Evaluated as a ParkUntil predicate while every chain is quiesced.
  bool AsyncSweepDue(uint32_t interval) const;

  // One background sweep: saves state for every dirty idle context
  // (contexts with a live incoming call are deferred and re-armed via
  // AsyncSweepDue), takes a process checkpoint, forces the bracket on the
  // calling (background) chain with ForcePoint::kAsyncCheckpoint, and
  // publishes. Returns Crashed when the process dies mid-sweep.
  Status RunAsyncSweep();

  // Log truncation (an engineering necessity checkpoints enable, though the
  // paper stops short of it): everything below the returned LSN can never
  // be read again — it is below the published checkpoint, below every
  // context's recovery LSN, and below every live last-call reply record.
  // Single-log only; the sharded path computes per-shard points instead.
  uint64_t ComputeTruncationPoint() const;

  // Trims the log head to the truncation point — per shard on a sharded
  // WAL, where each shard's point is the minimum local offset any
  // constraint pins on *that* shard (a shard no constraint touches trims
  // up to the published checkpoint's global sequence number). Returns
  // bytes reclaimed, summed across shards.
  uint64_t GarbageCollect();

  // --- statistics ---
  uint64_t state_saves() const { return state_saves_; }
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  uint64_t checkpoints_published() const { return checkpoints_published_; }
  uint64_t publish_skips() const { return publish_skips_; }
  uint64_t async_sweeps() const { return async_sweeps_; }
  uint64_t async_deferrals() const { return async_deferrals_; }

 private:
  // A context deferred by the last sweep has since finished its call and
  // can be captured now.
  bool HasDeferredIdleContext() const;

  Process* process_;
  uint64_t pending_begin_lsn_ = kInvalidLsn;
  uint64_t pending_end_lsn_ = kInvalidLsn;
  // Exclusive durable horizon (a local offset on the log that holds the
  // bracket — shard 0 when sharded) that must be reached before the
  // pending end record may publish. Captured right after the end append,
  // so it is one past the end record regardless of frame packing.
  uint64_t pending_end_horizon_ = 0;
  // Sim time of the end-record append, for phoenix.checkpoint.async.lag_ms.
  double pending_end_append_ms_ = 0.0;
  // Every LSN the pending bracket's entries reference (context recovery
  // origins and last-call reply records at capture time). GC must pin them
  // all: once capture is async, a context may save newer state between
  // capture and publish, and the live recovery LSN alone would let
  // auto_truncate_log trim records the checkpoint-in-progress still needs.
  // On publish they become published_ref_lsns_ — the published entries keep
  // referencing them until the next publish supersedes them.
  std::vector<uint64_t> pending_ref_lsns_;
  std::vector<uint64_t> published_ref_lsns_;
  // Publish-once latch: begin LSN of the checkpoint already in the
  // well-known file. Repeat MaybePublishCheckpoint calls for it are skips.
  uint64_t published_begin_lsn_ = kInvalidLsn;
  // Contexts the last async sweep skipped because they were serving a call.
  std::set<uint64_t> deferred_contexts_;
  uint64_t last_sweep_incoming_calls_ = 0;
  std::map<uint64_t, uint64_t> calls_since_save_;  // context id -> count
  uint64_t calls_since_checkpoint_ = 0;
  uint64_t state_saves_ = 0;
  uint64_t checkpoints_taken_ = 0;
  uint64_t checkpoints_published_ = 0;
  uint64_t publish_skips_ = 0;
  uint64_t async_sweeps_ = 0;
  uint64_t async_deferrals_ = 0;
};

}  // namespace phoenix

#endif  // PHOENIX_RECOVERY_CHECKPOINT_MANAGER_H_
