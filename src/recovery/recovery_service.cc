#include "recovery/recovery_service.h"

#include "common/strings.h"
#include "recovery/recovery_manager.h"
#include "runtime/machine.h"
#include "runtime/process.h"
#include "runtime/simulation.h"
#include "serde/codec.h"

namespace phoenix {

RecoveryService::RecoveryService(Machine* machine) : machine_(machine) {}

std::string RecoveryService::TableFileName() const {
  return machine_->name() + "/.recovery_service";
}

void RecoveryService::PersistTable() {
  Encoder enc;
  enc.PutVarint(registered_.size());
  for (const auto& [pid, log_name] : registered_) {
    enc.PutVarint(pid);
    enc.PutString(log_name);
  }
  Simulation* sim = machine_->simulation();
  sim->storage().WriteFile(TableFileName(), enc.buffer());
  // The paper force-writes registration updates to the service's log.
  sim->clock().AdvanceMs(
      machine_->disk().WriteLatencyMs(sim->clock().NowMs(), enc.size()));
}

uint32_t RecoveryService::RegisterProcess() {
  uint32_t pid = next_pid_++;
  registered_[pid] = StrCat(machine_->name(), "/proc", pid, ".log");
  PersistTable();
  return pid;
}

void RecoveryService::NotifyCrashed(uint32_t pid) {
  // The monitor notices the abnormal exit; restart happens on demand
  // (EnsureProcessAlive / RestartAllDead).
  (void)pid;
}

Status RecoveryService::EnsureProcessAlive(uint32_t pid) {
  Process* process = machine_->GetProcess(pid);
  if (process == nullptr) {
    return Status::NotFound(StrCat("unknown process ", pid));
  }
  if (process->alive()) return Status::OK();

  // Recovery only reads the stable log, so it is idempotent: if the process
  // is killed again mid-recovery (inject_failures_during_recovery), the
  // monitor simply restarts it.
  Status status = Status::Crashed("not attempted");
  for (int attempt = 0; attempt < 16 && status.IsCrashed(); ++attempt) {
    process->Start();
    process->set_recovering(true);
    RecoveryManager recovery(process);
    status = recovery.Recover();
    process->set_recovering(false);
    process->SetPendingFlusher(nullptr);
    if (status.IsCrashed() || !process->alive()) {
      process->Kill();
      status = Status::Crashed("process died during recovery");
    }
  }
  if (status.ok()) ++recoveries_performed_;
  return status;
}

Status RecoveryService::RestartAllDead() {
  for (const auto& [pid, log_name] : registered_) {
    PHX_RETURN_IF_ERROR(EnsureProcessAlive(pid));
  }
  return Status::OK();
}

int RecoveryService::dead_count() const {
  int dead = 0;
  for (const auto& [pid, log_name] : registered_) {
    Process* process =
        const_cast<Machine*>(machine_)->GetProcess(pid);
    if (process != nullptr && !process->alive()) ++dead;
  }
  return dead;
}

Result<std::map<uint32_t, std::string>> RecoveryService::ReadDurableTable()
    const {
  PHX_ASSIGN_OR_RETURN(
      std::vector<uint8_t> data,
      machine_->simulation()->storage().ReadFile(TableFileName()));
  Decoder dec(data);
  PHX_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint());
  std::map<uint32_t, std::string> table;
  for (uint64_t i = 0; i < n; ++i) {
    PHX_ASSIGN_OR_RETURN(uint64_t pid, dec.GetVarint());
    PHX_ASSIGN_OR_RETURN(std::string log_name, dec.GetString());
    table[static_cast<uint32_t>(pid)] = std::move(log_name);
  }
  return table;
}

}  // namespace phoenix
