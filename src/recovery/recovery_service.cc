#include "recovery/recovery_service.h"

#include <algorithm>

#include "common/strings.h"
#include "core/retry.h"
#include "recovery/recovery_manager.h"
#include "runtime/machine.h"
#include "runtime/process.h"
#include "runtime/simulation.h"
#include "serde/codec.h"
#include "wal/log_reader.h"

namespace phoenix {
namespace {

constexpr int kNumRungs = 3;

RecoveryMode ModeForRung(int rung) {
  switch (rung) {
    case 0:
      return RecoveryMode::kNormal;
    case 1:
      return RecoveryMode::kSalvageAssessed;
    default:
      return RecoveryMode::kColdStart;
  }
}

}  // namespace

RecoveryService::RecoveryService(Machine* machine) : machine_(machine) {}

std::string RecoveryService::TableFileName() const {
  return machine_->name() + "/.recovery_service";
}

void RecoveryService::PersistTable() {
  Encoder enc;
  enc.PutVarint(registered_.size());
  for (const auto& [pid, log_name] : registered_) {
    enc.PutVarint(pid);
    enc.PutString(log_name);
  }
  Simulation* sim = machine_->simulation();
  sim->storage().WriteFile(TableFileName(), enc.buffer());
  // The paper force-writes registration updates to the service's log.
  sim->clock().AdvanceMs(
      machine_->disk().WriteLatencyMs(sim->clock().NowMs(), enc.size()));
  table_dirty_ = false;
  sim->metrics()
      .GetCounter("phoenix.recovery.service.table_forces",
                  obs::LabelSet{{"machine", machine_->name()}})
      .Increment();
}

void RecoveryService::PersistTableIfDirty() {
  if (table_dirty_) {
    PersistTable();
    return;
  }
  // A restart changes no registration: pid and log name are stable across
  // failures by design. Re-forcing the identical table here was pure disk
  // traffic — skip it and keep the skip visible.
  machine_->simulation()
      ->metrics()
      .GetCounter("phoenix.recovery.service.table_force_skips",
                  obs::LabelSet{{"machine", machine_->name()}})
      .Increment();
}

uint32_t RecoveryService::RegisterProcess() {
  uint32_t pid = next_pid_++;
  registered_[pid] = StrCat(machine_->name(), "/proc", pid, ".log");
  table_dirty_ = true;
  PersistTable();
  return pid;
}

void RecoveryService::NotifyCrashed(uint32_t pid) {
  // The monitor notices the abnormal exit; restart happens on demand
  // (EnsureProcessAlive / RestartAllDead).
  (void)pid;
}

Status RecoveryService::EnsureProcessAlive(uint32_t pid) {
  Process* process = machine_->GetProcess(pid);
  if (process == nullptr) {
    return Status::NotFound(StrCat("unknown process ", pid));
  }
  if (process->alive()) return Status::OK();
  return SuperviseRecovery(pid, process);
}

void RecoveryService::ApplyRecoveryAttacks(Process* process,
                                           uint64_t attempt) {
  Simulation* sim = machine_->simulation();
  std::vector<RecoveryAttack> attacks = sim->injector().TakeRecoveryAttacks(
      machine_->name(), process->pid(), attempt);
  if (attacks.empty()) return;
  std::string label = StrCat(machine_->name(), "/", process->pid());
  const std::string log_name = process->log().log_name();
  for (RecoveryAttack kind : attacks) {
    switch (kind) {
      case RecoveryAttack::kCorruptWellKnownFile:
        sim->storage().CorruptFile(log_name + ".wkf", 0, /*flip_count=*/2);
        break;
      case RecoveryAttack::kCorruptNewestStateRecord: {
        // Newest by append order — on a sharded WAL the state records are
        // spread across shards, so "newest" means highest global sequence
        // number, and the bit flips land in that shard's file.
        LogManager& log = process->log();
        uint64_t state_lsn = kInvalidLsn;
        uint64_t state_order = 0;
        uint32_t state_shard = 0;
        for (uint32_t s = 0; s < log.shard_count(); ++s) {
          LogView view = log.ShardStableView(s);
          LogReader reader(view, log.shard_head_base(s));
          reader.EnableSalvage();
          if (log.sharded()) reader.EnableGsnPrefix();
          while (auto parsed = reader.Next()) {
            if (!std::holds_alternative<ContextStateRecord>(parsed->record)) {
              continue;
            }
            uint64_t order = log.sharded() ? parsed->order : parsed->lsn;
            if (state_lsn == kInvalidLsn || order > state_order) {
              state_lsn = parsed->lsn;
              state_order = order;
              state_shard = s;
            }
          }
        }
        if (state_lsn != kInvalidLsn) {
          sim->storage().CorruptLog(log.shard_log_name(state_shard),
                                    state_lsn + 8,
                                    /*flip_count=*/2);
        }
        break;
      }
      case RecoveryAttack::kTearStableTail:
        process->InjectTornTail(24);
        break;
    }
    sim->metrics()
        .GetCounter("phoenix.recovery.supervisor.storage_attacks",
                    obs::LabelSet{{"process", label},
                                  {"attack", RecoveryAttackName(kind)}})
        .Increment();
    sim->tracer().Instant("recovery", "supervisor_storage_attack", label,
                          {obs::Arg("attack", RecoveryAttackName(kind)),
                           obs::Arg("before_attempt", attempt)});
  }
}

Status RecoveryService::SuperviseRecovery(uint32_t pid, Process* process) {
  Simulation* sim = machine_->simulation();
  const RuntimeOptions& opts = sim->options();
  std::string label = StrCat(machine_->name(), "/", pid);
  obs::LabelSet labels{{"process", label}};

  const int attempts_per_rung =
      std::max(1, opts.recovery_supervisor_attempts_per_rung);
  RetryBackoff backoff(opts.recovery_supervisor_backoff_initial_ms,
                       opts.recovery_supervisor_backoff_multiplier,
                       opts.recovery_supervisor_backoff_max_ms,
                       opts.recovery_supervisor_backoff_jitter,
                       opts.recovery_supervisor_backoff_budget_ms);

  // Recovery only reads the stable log, so it is idempotent: if the process
  // is killed again mid-recovery (inject_failures_during_recovery), the
  // supervisor restarts it — first at the same rung, then one rung harder.
  // The fault-free path runs exactly one attempt with no sleep and no rng
  // draw, so pinned benchmarks cannot be perturbed by the ladder.
  Status status = Status::Crashed("not attempted");
  uint64_t attempt = 0;
  bool budget_exhausted = false;
  for (int rung = 0; rung < kNumRungs && !budget_exhausted; ++rung) {
    sim->metrics()
        .GetGauge("phoenix.recovery.supervisor.rung", labels)
        .Set(rung);
    if (rung > 0) {
      sim->tracer().Instant(
          "recovery", "supervisor_escalate", label,
          {obs::Arg("rung", static_cast<uint64_t>(rung)),
           obs::Arg("mode", RecoveryModeName(ModeForRung(rung)))});
    }
    for (int a = 0; a < attempts_per_rung; ++a) {
      ++attempt;
      ApplyRecoveryAttacks(process, attempt);
      sim->metrics()
          .GetCounter("phoenix.recovery.supervisor.attempts",
                      obs::LabelSet{{"process", label},
                                    {"rung",
                                     RecoveryModeName(ModeForRung(rung))}})
          .Increment();
      process->Start();
      process->set_recovering(true);
      RecoveryManager recovery(process, ModeForRung(rung));
      status = recovery.Recover();
      process->set_recovering(false);
      process->SetPendingFlusher(nullptr);
      if (status.ok() && process->alive()) {
        ++recoveries_performed_;
        PersistTableIfDirty();
        return Status::OK();
      }
      if (process->alive()) process->Kill();
      if (status.ok()) {
        status = Status::Crashed("process died during recovery");
      }
      sim->tracer().Instant("recovery", "supervisor_attempt_failed", label,
                            {obs::Arg("attempt", attempt),
                             obs::Arg("rung", static_cast<uint64_t>(rung))});
      if (!status.IsCrashed()) break;  // structural failure: escalate now
      if (a + 1 < attempts_per_rung) {
        double delay = backoff.NextDelayMs(sim->retry_rng());
        if (delay < 0) {
          budget_exhausted = true;
          break;
        }
        sim->clock().AdvanceMs(delay);
      }
    }
  }

  sim->metrics()
      .GetCounter("phoenix.recovery.supervisor.gave_up", labels)
      .Increment();
  sim->tracer().Instant("recovery", "supervisor_gave_up", label,
                        {obs::Arg("attempts", attempt),
                         obs::Arg("budget_exhausted", budget_exhausted)});
  return Status::Unavailable(
      StrCat("recovery supervisor gave up on ", label, " after ", attempt,
             " attempt(s): ", status.ToString()));
}

Status RecoveryService::RestartAllDead() {
  for (const auto& [pid, log_name] : registered_) {
    PHX_RETURN_IF_ERROR(EnsureProcessAlive(pid));
  }
  return Status::OK();
}

int RecoveryService::dead_count() const {
  int dead = 0;
  for (const auto& [pid, log_name] : registered_) {
    Process* process =
        const_cast<Machine*>(machine_)->GetProcess(pid);
    if (process != nullptr && !process->alive()) ++dead;
  }
  return dead;
}

Result<std::map<uint32_t, std::string>> RecoveryService::ReadDurableTable()
    const {
  PHX_ASSIGN_OR_RETURN(
      std::vector<uint8_t> data,
      machine_->simulation()->storage().ReadFile(TableFileName()));
  Decoder dec(data);
  PHX_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint());
  std::map<uint32_t, std::string> table;
  for (uint64_t i = 0; i < n; ++i) {
    PHX_ASSIGN_OR_RETURN(uint64_t pid, dec.GetVarint());
    PHX_ASSIGN_OR_RETURN(std::string log_name, dec.GetString());
    table[static_cast<uint32_t>(pid)] = std::move(log_name);
  }
  return table;
}

}  // namespace phoenix
