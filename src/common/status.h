#ifndef PHOENIX_COMMON_STATUS_H_
#define PHOENIX_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace phoenix {

// Error codes used throughout Phoenix/App. Phoenix is exception-free: every
// fallible operation returns a Status (or a Result<T>, see result.h).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kCorruption = 6,          // torn/garbled log record, bad CRC
  kUnavailable = 7,         // remote process/component crashed; retryable
  kCrashed = 8,             // the *local* process was killed mid-operation
  kUnimplemented = 9,
  kOutOfRange = 10,
};

// Returns the canonical lowercase name of `code` ("ok", "unavailable", ...).
std::string_view StatusCodeToString(StatusCode code);

// A cheap value type carrying success or an (code, message) error.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Crashed(std::string msg) {
    return Status(StatusCode::kCrashed, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCrashed() const { return code_ == StatusCode::kCrashed; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace phoenix

#endif  // PHOENIX_COMMON_STATUS_H_
