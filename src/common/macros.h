#ifndef PHOENIX_COMMON_MACROS_H_
#define PHOENIX_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Propagates a non-OK Status out of the enclosing function.
#define PHX_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::phoenix::Status _phx_status = (expr);        \
    if (!_phx_status.ok()) return _phx_status;     \
  } while (0)

// Evaluates `rexpr` (a Result<T>), propagates its Status on error, otherwise
// move-assigns the value into `lhs`. `lhs` may include a declaration.
#define PHX_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  PHX_ASSIGN_OR_RETURN_IMPL_(                                   \
      PHX_MACRO_CONCAT_(_phx_result, __LINE__), lhs, rexpr)

#define PHX_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return std::move(result).status(); \
  lhs = std::move(result).value()

#define PHX_MACRO_CONCAT_INNER_(a, b) a##b
#define PHX_MACRO_CONCAT_(a, b) PHX_MACRO_CONCAT_INNER_(a, b)

// Fatal invariant check. Phoenix is exception-free; a violated internal
// invariant aborts with a diagnostic.
#define PHX_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "PHX_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define PHX_CHECK_OK(expr)                                                  \
  do {                                                                      \
    ::phoenix::Status _phx_status = (expr);                                 \
    if (!_phx_status.ok()) {                                                \
      std::fprintf(stderr, "PHX_CHECK_OK failed: %s at %s:%d\n",            \
                   _phx_status.ToString().c_str(), __FILE__, __LINE__);     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // PHOENIX_COMMON_MACROS_H_
