#include "common/status.h"

namespace phoenix {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kCrashed:
      return "crashed";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kOutOfRange:
      return "out_of_range";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace phoenix
