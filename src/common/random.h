#ifndef PHOENIX_COMMON_RANDOM_H_
#define PHOENIX_COMMON_RANDOM_H_

#include <cstdint>

namespace phoenix {

// Deterministic splitmix64-based PRNG. All randomness in the simulator flows
// through seeded instances of this class so that every run — including every
// injected crash schedule and disk-seek jitter — is exactly reproducible.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ull) {}

  Random(const Random&) = default;
  Random& operator=(const Random&) = default;

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  // Uniform in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t state_;
};

}  // namespace phoenix

#endif  // PHOENIX_COMMON_RANDOM_H_
