#include "common/crc32c.h"

#include <array>

namespace phoenix {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reversed CRC-32C polynomial

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256>& table = *new auto(MakeTable());
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& table = Table();
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace phoenix
