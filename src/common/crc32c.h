#ifndef PHOENIX_COMMON_CRC32C_H_
#define PHOENIX_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace phoenix {

// CRC-32C (Castagnoli). Used to detect torn or garbled log records after a
// crash: a record whose stored CRC does not match its payload is treated as
// the end of the log.
uint32_t Crc32c(const void* data, size_t n);

// Extends a running CRC with more bytes (start from `crc = 0`).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

}  // namespace phoenix

#endif  // PHOENIX_COMMON_CRC32C_H_
