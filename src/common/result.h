#ifndef PHOENIX_COMMON_RESULT_H_
#define PHOENIX_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace phoenix {

// Result<T> holds either a T or a non-OK Status (a minimal StatusOr).
// Accessing value() on an error result aborts: callers must check ok()
// first or use PHX_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    PHX_CHECK(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    PHX_CHECK(ok());
    return *value_;
  }
  T& value() & {
    PHX_CHECK(ok());
    return *value_;
  }
  T value() && {
    PHX_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ is engaged.
  std::optional<T> value_;
};

}  // namespace phoenix

#endif  // PHOENIX_COMMON_RESULT_H_
