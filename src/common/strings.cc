#include "common/strings.h"

#include <cstdio>

namespace phoenix {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace phoenix
