#ifndef PHOENIX_COMMON_STRINGS_H_
#define PHOENIX_COMMON_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace phoenix {

// Concatenates the string representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits);

}  // namespace phoenix

#endif  // PHOENIX_COMMON_STRINGS_H_
