#include "common/random.h"

#include "common/macros.h"
#include "common/status.h"

namespace phoenix {

uint64_t Random::Next() {
  // splitmix64 step.
  state_ += 0x9E3779B97F4A7C15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Random::Uniform(uint64_t n) {
  PHX_CHECK(n > 0);
  return Next() % n;
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  PHX_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace phoenix
