#include "bookstore/setup.h"

#include "bookstore/basket_manager.h"
#include "bookstore/book_seller.h"
#include "bookstore/bookstore.h"
#include "bookstore/price_grabber.h"
#include "bookstore/tax_calculator.h"
#include "common/strings.h"

namespace phoenix::bookstore {

const char* OptLevelName(OptLevel level) {
  switch (level) {
    case OptLevel::kBaseline:
      return "baseline";
    case OptLevel::kOptimizedLogging:
      return "optimized_logging";
    case OptLevel::kSpecialized:
      return "specialized";
  }
  return "unknown";
}

RuntimeOptions OptionsForLevel(OptLevel level) {
  RuntimeOptions opts;
  switch (level) {
    case OptLevel::kBaseline:
      opts.logging_mode = LoggingMode::kBaseline;
      opts.use_specialized_kinds = false;
      break;
    case OptLevel::kOptimizedLogging:
      opts.logging_mode = LoggingMode::kOptimized;
      opts.use_specialized_kinds = false;
      break;
    case OptLevel::kSpecialized:
      opts.logging_mode = LoggingMode::kOptimized;
      opts.use_specialized_kinds = true;
      break;
  }
  return opts;
}

void RegisterBookstoreComponents(ComponentFactoryRegistry& factories) {
  factories.Register<Bookstore>("Bookstore");
  factories.Register<PriceGrabber>("PriceGrabber");
  factories.Register<TaxCalculator>("TaxCalculator");
  factories.Register<BookSeller>("BookSeller");
  factories.Register<BasketManager>("BasketManager");
}

Result<Deployment> Deploy(Simulation& sim, Machine& server_machine,
                          int num_stores, OptLevel level) {
  bool specialized = level == OptLevel::kSpecialized;
  Deployment out;
  Process& proc = server_machine.CreateProcess();
  out.server_process = &proc;
  ExternalClient admin(&sim, server_machine.name());

  for (int i = 1; i <= num_stores; ++i) {
    PHX_ASSIGN_OR_RETURN(
        std::string uri,
        admin.CreateComponent(proc, "Bookstore", StrCat("store", i),
                              ComponentKind::kPersistent,
                              MakeArgs(StrCat("Store-", i))));
    out.store_uris.push_back(std::move(uri));
  }

  ArgList grabber_args;
  for (const std::string& uri : out.store_uris) {
    grabber_args.emplace_back(uri);
  }
  PHX_ASSIGN_OR_RETURN(
      out.grabber_uri,
      admin.CreateComponent(proc, "PriceGrabber", "grabber",
                            specialized ? ComponentKind::kReadOnly
                                        : ComponentKind::kPersistent,
                            std::move(grabber_args)));

  PHX_ASSIGN_OR_RETURN(
      out.tax_uri,
      admin.CreateComponent(proc, "TaxCalculator", "tax",
                            specialized ? ComponentKind::kFunctional
                                        : ComponentKind::kPersistent,
                            {}));

  PHX_ASSIGN_OR_RETURN(
      out.seller_uri,
      admin.CreateComponent(proc, "BookSeller", "seller",
                            ComponentKind::kPersistent,
                            MakeArgs(out.tax_uri, specialized)));
  return out;
}

Result<SessionResult> RunBuyerSession(Simulation& sim,
                                      const Deployment& deployment,
                                      ExternalClient& buyer,
                                      const std::string& buyer_name,
                                      const std::string& region) {
  (void)sim;
  SessionResult result;

  // i) keyword search through the price grabber.
  PHX_ASSIGN_OR_RETURN(
      Value hits, buyer.Call(deployment.grabber_uri, "Search",
                             MakeArgs(std::string("recovery"))));
  result.search_hits = static_cast<int64_t>(hits.AsList().size());

  // ii) add the first hit from each store to the basket.
  for (const std::string& store : deployment.store_uris) {
    for (const Value& row : hits.AsList()) {
      if (row.AsList()[0].AsString() == store) {
        PHX_ASSIGN_OR_RETURN(
            Value count,
            buyer.Call(deployment.seller_uri, "AddToBasket",
                       MakeArgs(buyer_name, store, row.AsList()[1].AsInt())));
        result.items_in_basket = count.AsInt();
        break;
      }
    }
  }

  // iii) show the basket, then total price including tax (the buyer asks
  // the tax calculator directly, per Figure 10's arrows).
  PHX_ASSIGN_OR_RETURN(Value items,
                       buyer.Call(deployment.seller_uri, "ShowBasket",
                                  MakeArgs(buyer_name)));
  (void)items;
  PHX_ASSIGN_OR_RETURN(Value subtotal,
                       buyer.Call(deployment.seller_uri, "BasketSubtotal",
                                  MakeArgs(buyer_name)));
  PHX_ASSIGN_OR_RETURN(
      Value total, buyer.Call(deployment.tax_uri, "TotalWithTax",
                              MakeArgs(subtotal.AsDouble(), region)));
  result.total_with_tax = total.AsDouble();

  // iv) remove all the books from the shopping basket.
  PHX_ASSIGN_OR_RETURN(Value removed,
                       buyer.Call(deployment.seller_uri, "ClearBasket",
                                  MakeArgs(buyer_name)));
  result.items_removed = removed.AsInt();
  return result;
}

}  // namespace phoenix::bookstore
