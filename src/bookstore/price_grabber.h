#ifndef PHOENIX_BOOKSTORE_PRICE_GRABBER_H_
#define PHOENIX_BOOKSTORE_PRICE_GRABBER_H_

#include "core/phoenix.h"

namespace phoenix::bookstore {

// Keyword search across all bookstores (Figure 10). A meta-search engine —
// the paper's motivating example of a *read-only* component: stateless, but
// it reads persistent stores, so its replies are unrepeatable (§3.2.3).
// In the baseline deployment it is declared persistent instead.
//
// Methods:
//   Search(keyword) -> list of [store_uri, book_id, title, price]
//   BestPrice(keyword) -> [store_uri, book_id, title, price] of cheapest hit
class PriceGrabber : public Component {
 public:
  PriceGrabber() = default;

  void RegisterMethods(MethodRegistry& methods) override;
  void RegisterFields(FieldRegistry& fields) override;
  // args: [store_uri...]
  Status Initialize(const ArgList& args) override;

 private:
  Result<Value> Search(const ArgList& args);
  Result<Value> BestPrice(const ArgList& args);

  Value store_uris_{Value::List{}};
};

}  // namespace phoenix::bookstore

#endif  // PHOENIX_BOOKSTORE_PRICE_GRABBER_H_
