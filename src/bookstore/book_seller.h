#ifndef PHOENIX_BOOKSTORE_BOOK_SELLER_H_
#define PHOENIX_BOOKSTORE_BOOK_SELLER_H_

#include "core/phoenix.h"

namespace phoenix::bookstore {

// Manages a set of basket managers, one per book buyer (Figure 10).
// Persistent. Depending on deployment its baskets are subordinates (living
// in this context — the specialized configuration) or standalone persistent
// components created through the process activator (baseline).
//
// Methods:
//   AddToBasket(buyer, store_uri, book_id) -> item count
//       (reserves the copy at the store — a persistent state change)
//   ShowBasket(buyer) -> list of items                           (read-only)
//   BasketSubtotal(buyer) -> sum of prices                       (read-only)
//   Checkout(buyer, region) -> total with tax; confirms each reservation as
//       a sale (several distinct servers in one method execution — the §3.5
//       multi-call optimization's showcase), asks the tax calculator, and
//       clears the basket.
//   ClearBasket(buyer) -> items removed; reservations returned to stores
class BookSeller : public Component {
 public:
  BookSeller() = default;

  void RegisterMethods(MethodRegistry& methods) override;
  void RegisterFields(FieldRegistry& fields) override;
  // args: [tax_calculator_uri, subordinate_baskets(bool)]
  Status Initialize(const ArgList& args) override;

 private:
  Result<Value> AddToBasket(const ArgList& args);
  Result<Value> ShowBasket(const ArgList& args);
  Result<Value> BasketSubtotal(const ArgList& args);
  Result<Value> Checkout(const ArgList& args);
  Result<Value> ClearBasket(const ArgList& args);

  // URI of `buyer`'s basket, creating it on first use.
  Result<std::string> EnsureBasket(const std::string& buyer);
  // nullptr-equivalent: empty string when the buyer has no basket yet.
  std::string FindBasket(const std::string& buyer) const;

  ComponentRefField tax_calculator_;
  bool subordinate_baskets_ = true;
  Value baskets_{Value::List{}};  // list of [buyer, basket_uri]
};

}  // namespace phoenix::bookstore

#endif  // PHOENIX_BOOKSTORE_BOOK_SELLER_H_
