#include "bookstore/book_seller.h"

#include "common/strings.h"

namespace phoenix::bookstore {

void BookSeller::RegisterMethods(MethodRegistry& methods) {
  methods.Register("AddToBasket",
                   [this](const ArgList& a) { return AddToBasket(a); });
  methods.Register(
      "ShowBasket", [this](const ArgList& a) { return ShowBasket(a); },
      MethodTraits{.read_only = true});
  methods.Register(
      "BasketSubtotal",
      [this](const ArgList& a) { return BasketSubtotal(a); },
      MethodTraits{.read_only = true});
  methods.Register("Checkout",
                   [this](const ArgList& a) { return Checkout(a); });
  methods.Register("ClearBasket",
                   [this](const ArgList& a) { return ClearBasket(a); });
}

void BookSeller::RegisterFields(FieldRegistry& fields) {
  fields.RegisterComponentRef("tax_calculator", &tax_calculator_);
  fields.RegisterBool("subordinate_baskets", &subordinate_baskets_);
  fields.RegisterValue("baskets", &baskets_);
}

Status BookSeller::Initialize(const ArgList& args) {
  if (args.size() != 2 || args[0].kind() != Value::Kind::kString ||
      args[1].kind() != Value::Kind::kBool) {
    return Status::InvalidArgument(
        "BookSeller(tax_calculator_uri, subordinate_baskets)");
  }
  tax_calculator_.uri = args[0].AsString();
  subordinate_baskets_ = args[1].AsBool();
  return Status::OK();
}

std::string BookSeller::FindBasket(const std::string& buyer) const {
  for (const Value& pair : baskets_.AsList()) {
    if (pair.AsList()[0].AsString() == buyer) {
      return pair.AsList()[1].AsString();
    }
  }
  return "";
}

Result<std::string> BookSeller::EnsureBasket(const std::string& buyer) {
  std::string existing = FindBasket(buyer);
  if (!existing.empty()) return existing;

  std::string basket_name = StrCat(name(), "_basket_", buyer);
  std::string uri;
  if (subordinate_baskets_) {
    PHX_ASSIGN_OR_RETURN(uri,
                         CreateSubordinate("BasketManager", basket_name, {}));
  } else {
    // Baseline deployment: a standalone persistent component, created via
    // this process's activator — a logged, recoverable call.
    Process* proc = context()->process();
    PHX_ASSIGN_OR_RETURN(
        Value created,
        Call(proc->ActivatorUri(), "Create",
             MakeArgs("BasketManager", basket_name,
                      static_cast<int64_t>(ComponentKind::kPersistent),
                      Value::List{})));
    uri = created.AsString();
  }
  Value::List pair;
  pair.push_back(Value(buyer));
  pair.push_back(Value(uri));
  baskets_.MutableList().push_back(Value(std::move(pair)));
  return uri;
}

Result<Value> BookSeller::AddToBasket(const ArgList& args) {
  if (args.size() != 3 || args[0].kind() != Value::Kind::kString ||
      args[1].kind() != Value::Kind::kString ||
      args[2].kind() != Value::Kind::kInt) {
    return Status::InvalidArgument("AddToBasket(buyer, store_uri, book_id)");
  }
  // Reserve the copy at the store (a persistent, state-changing call — the
  // reservation is what makes the basket durable against oversell), then
  // record it in the basket.
  const std::string& store_uri = args[1].AsString();
  PHX_ASSIGN_OR_RETURN(
      Value book, Call(store_uri, "Reserve", MakeArgs(args[2], int64_t{1})));
  PHX_ASSIGN_OR_RETURN(std::string basket, EnsureBasket(args[0].AsString()));
  return Call(basket, "Add",
              MakeArgs(store_uri, book.AsList()[0].AsInt(),
                       book.AsList()[1].AsString(),
                       book.AsList()[2].AsDouble()));
}

Result<Value> BookSeller::ShowBasket(const ArgList& args) {
  if (args.size() != 1 || args[0].kind() != Value::Kind::kString) {
    return Status::InvalidArgument("ShowBasket(buyer)");
  }
  std::string basket = FindBasket(args[0].AsString());
  if (basket.empty()) return Value(Value::List{});
  return Call(basket, "Items", {});
}

Result<Value> BookSeller::BasketSubtotal(const ArgList& args) {
  if (args.size() != 1 || args[0].kind() != Value::Kind::kString) {
    return Status::InvalidArgument("BasketSubtotal(buyer)");
  }
  std::string basket = FindBasket(args[0].AsString());
  if (basket.empty()) return Value(0.0);
  return Call(basket, "Total", {});
}

Result<Value> BookSeller::Checkout(const ArgList& args) {
  if (args.size() != 2 || args[0].kind() != Value::Kind::kString ||
      args[1].kind() != Value::Kind::kString) {
    return Status::InvalidArgument("Checkout(buyer, region)");
  }
  const std::string& buyer = args[0].AsString();
  std::string basket = FindBasket(buyer);
  if (basket.empty()) {
    return Status::FailedPrecondition("empty basket for " + buyer);
  }
  PHX_ASSIGN_OR_RETURN(Value items, Call(basket, "Items", {}));

  // One sale confirmation per item (the stock was already reserved at add
  // time): several distinct persistent servers inside a single method
  // execution — the multi-call optimization's target pattern.
  double subtotal = 0.0;
  for (const Value& item : items.AsList()) {
    const Value::List& row = item.AsList();
    PHX_RETURN_IF_ERROR(Call(row[0].AsString(), "ConfirmSale",
                             MakeArgs(row[1].AsInt(), int64_t{1}))
                            .status());
    subtotal += row[3].AsDouble();
  }

  PHX_ASSIGN_OR_RETURN(
      Value total,
      CallRef(tax_calculator_, "TotalWithTax", MakeArgs(subtotal, args[1])));
  PHX_RETURN_IF_ERROR(Call(basket, "Clear", {}).status());
  return total;
}

Result<Value> BookSeller::ClearBasket(const ArgList& args) {
  if (args.size() != 1 || args[0].kind() != Value::Kind::kString) {
    return Status::InvalidArgument("ClearBasket(buyer)");
  }
  std::string basket = FindBasket(args[0].AsString());
  if (basket.empty()) return Value(int64_t{0});
  // Removing a book returns its reservation to the store.
  PHX_ASSIGN_OR_RETURN(Value items, Call(basket, "Items", {}));
  for (const Value& item : items.AsList()) {
    const Value::List& row = item.AsList();
    PHX_RETURN_IF_ERROR(Call(row[0].AsString(), "Release",
                             MakeArgs(row[1].AsInt(), int64_t{1}))
                            .status());
  }
  return Call(basket, "Clear", {});
}

}  // namespace phoenix::bookstore
