#ifndef PHOENIX_BOOKSTORE_BASKET_MANAGER_H_
#define PHOENIX_BOOKSTORE_BASKET_MANAGER_H_

#include "core/phoenix.h"

namespace phoenix::bookstore {

// One buyer's shopping basket (Figure 10). In the specialized deployment it
// is a *subordinate* of the BookSeller — it lives in the seller's context,
// so every Add/Items/Clear is a plain local call with no interception or
// logging (§3.2.1); its state rides along in the seller's context state
// records. The baseline deployment creates it as a standalone persistent
// component instead.
//
// Methods:
//   Add(store_uri, book_id, title, price) -> item count
//   Items() -> list of [store_uri, book_id, title, price]
//   Total() -> sum of prices
//   Clear() -> number of items removed
class BasketManager : public Component {
 public:
  BasketManager() = default;

  void RegisterMethods(MethodRegistry& methods) override;
  void RegisterFields(FieldRegistry& fields) override;

 private:
  Result<Value> Add(const ArgList& args);
  Result<Value> Clear(const ArgList& args);

  Value items_{Value::List{}};
};

}  // namespace phoenix::bookstore

#endif  // PHOENIX_BOOKSTORE_BASKET_MANAGER_H_
