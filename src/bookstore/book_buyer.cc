#include "bookstore/book_buyer.h"

#include "common/strings.h"

namespace phoenix::bookstore {

BookBuyer::BookBuyer(Simulation* sim, const Deployment* deployment,
                     std::string buyer_name, std::string region,
                     std::string client_machine)
    : sim_(sim),
      deployment_(deployment),
      buyer_name_(std::move(buyer_name)),
      region_(std::move(region)),
      client_(sim, std::move(client_machine)) {}

Result<std::string> BookBuyer::SearchBooks(const std::string& keyword) {
  PHX_ASSIGN_OR_RETURN(Value hits, client_.Call(deployment_->grabber_uri,
                                                "Search", MakeArgs(keyword)));
  std::string out = StrCat("search \"", keyword, "\": ",
                           hits.AsList().size(), " hits");
  for (const Value& row : hits.AsList()) {
    out += StrCat("\n  ", row.AsList()[2].AsString(), "  $",
                  FormatDouble(row.AsList()[3].AsDouble(), 2));
  }
  return out;
}

Result<std::string> BookBuyer::AddFirstHitFromEachStore(
    const std::string& keyword) {
  PHX_ASSIGN_OR_RETURN(Value hits, client_.Call(deployment_->grabber_uri,
                                                "Search", MakeArgs(keyword)));
  int added = 0;
  for (const std::string& store : deployment_->store_uris) {
    for (const Value& row : hits.AsList()) {
      if (row.AsList()[0].AsString() == store) {
        PHX_RETURN_IF_ERROR(
            client_
                .Call(deployment_->seller_uri, "AddToBasket",
                      MakeArgs(buyer_name_, store, row.AsList()[1].AsInt()))
                .status());
        ++added;
        break;
      }
    }
  }
  return StrCat("added ", added, " books (one per store) to the basket");
}

Result<std::string> BookBuyer::ShowBasket() {
  PHX_ASSIGN_OR_RETURN(Value items,
                       client_.Call(deployment_->seller_uri, "ShowBasket",
                                    MakeArgs(buyer_name_)));
  std::string out = StrCat("basket of ", buyer_name_, " (",
                           items.AsList().size(), " items):");
  for (const Value& item : items.AsList()) {
    out += StrCat("\n  ", item.AsList()[2].AsString(), "  $",
                  FormatDouble(item.AsList()[3].AsDouble(), 2));
  }
  return out;
}

Result<std::string> BookBuyer::TotalWithTax() {
  PHX_ASSIGN_OR_RETURN(Value subtotal,
                       client_.Call(deployment_->seller_uri, "BasketSubtotal",
                                    MakeArgs(buyer_name_)));
  PHX_ASSIGN_OR_RETURN(
      Value total, client_.Call(deployment_->tax_uri, "TotalWithTax",
                                MakeArgs(subtotal.AsDouble(), region_)));
  return StrCat("subtotal $", FormatDouble(subtotal.AsDouble(), 2),
                ", with ", region_, " tax: $",
                FormatDouble(total.AsDouble(), 2));
}

Result<std::string> BookBuyer::Checkout() {
  PHX_ASSIGN_OR_RETURN(Value total,
                       client_.Call(deployment_->seller_uri, "Checkout",
                                    MakeArgs(buyer_name_, region_)));
  return StrCat("checked out; charged $", FormatDouble(total.AsDouble(), 2));
}

Result<std::string> BookBuyer::EmptyBasket() {
  PHX_ASSIGN_OR_RETURN(Value removed,
                       client_.Call(deployment_->seller_uri, "ClearBasket",
                                    MakeArgs(buyer_name_)));
  return StrCat("removed ", removed.AsInt(), " books from the basket");
}

}  // namespace phoenix::bookstore
