#ifndef PHOENIX_BOOKSTORE_SETUP_H_
#define PHOENIX_BOOKSTORE_SETUP_H_

#include <string>
#include <vector>

#include "core/phoenix.h"

namespace phoenix::bookstore {

// The three configurations measured in Table 8.
enum class OptLevel {
  // IDEAS'03 behavior: every component persistent, Algorithm 1 logging.
  kBaseline,
  // Algorithm 2/3 logging, but still all-persistent components.
  kOptimizedLogging,
  // Specialized kinds (Figure 10's letters: PriceGrabber read-only,
  // TaxCalculator functional, BasketManager subordinate) + read-only
  // methods.
  kSpecialized,
};

const char* OptLevelName(OptLevel level);

// Runtime switches matching `level` (checkpointing left off; benches toggle
// it separately).
RuntimeOptions OptionsForLevel(OptLevel level);

struct Deployment {
  std::vector<std::string> store_uris;
  std::string grabber_uri;
  std::string seller_uri;
  std::string tax_uri;
  Process* server_process = nullptr;
};

// Registers the five component types with the simulation's factories.
void RegisterBookstoreComponents(ComponentFactoryRegistry& factories);

// Creates the Figure 10 component graph in one process on `server_machine`:
// `num_stores` bookstores, the price grabber, the tax calculator and the
// book seller, with kinds chosen by `level`.
Result<Deployment> Deploy(Simulation& sim, Machine& server_machine,
                          int num_stores, OptLevel level);

// One §5.5 BookBuyer session (the measured operation set):
//   i)   search for books with keyword "recovery";
//   ii)  add a book from each bookstore to the shopping basket;
//   iii) show the basket and compute the total price including tax;
//   iv)  remove all the books from the basket.
struct SessionResult {
  int64_t search_hits = 0;
  int64_t items_in_basket = 0;
  double total_with_tax = 0.0;
  int64_t items_removed = 0;
};
Result<SessionResult> RunBuyerSession(Simulation& sim,
                                      const Deployment& deployment,
                                      ExternalClient& buyer,
                                      const std::string& buyer_name,
                                      const std::string& region);

}  // namespace phoenix::bookstore

#endif  // PHOENIX_BOOKSTORE_SETUP_H_
