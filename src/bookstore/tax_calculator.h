#ifndef PHOENIX_BOOKSTORE_TAX_CALCULATOR_H_
#define PHOENIX_BOOKSTORE_TAX_CALCULATOR_H_

#include "core/phoenix.h"

namespace phoenix::bookstore {

// Sales tax from total price and user region (Figure 10) — the paper's
// example of a *functional* component: pure, stateless, calls nothing, so
// the optimized system logs nothing anywhere for its calls (§3.2.2).
//
// Methods:
//   ComputeTax(amount, region) -> tax amount
//   TotalWithTax(amount, region) -> amount + tax
class TaxCalculator : public Component {
 public:
  TaxCalculator() = default;

  void RegisterMethods(MethodRegistry& methods) override;

  // Pure rate table, exposed for tests.
  static double RateForRegion(const std::string& region);

 private:
  Result<Value> ComputeTax(const ArgList& args);
  Result<Value> TotalWithTax(const ArgList& args);
};

}  // namespace phoenix::bookstore

#endif  // PHOENIX_BOOKSTORE_TAX_CALCULATOR_H_
