#include "bookstore/tax_calculator.h"

namespace phoenix::bookstore {

void TaxCalculator::RegisterMethods(MethodRegistry& methods) {
  methods.Register("ComputeTax",
                   [this](const ArgList& a) { return ComputeTax(a); });
  methods.Register("TotalWithTax",
                   [this](const ArgList& a) { return TotalWithTax(a); });
}

double TaxCalculator::RateForRegion(const std::string& region) {
  if (region == "WA") return 0.095;
  if (region == "OR") return 0.0;
  if (region == "CA") return 0.085;
  if (region == "NY") return 0.08875;
  return 0.06;
}

Result<Value> TaxCalculator::ComputeTax(const ArgList& args) {
  if (args.size() != 2 || args[1].kind() != Value::Kind::kString) {
    return Status::InvalidArgument("ComputeTax(amount, region)");
  }
  return Value(args[0].AsDouble() * RateForRegion(args[1].AsString()));
}

Result<Value> TaxCalculator::TotalWithTax(const ArgList& args) {
  if (args.size() != 2 || args[1].kind() != Value::Kind::kString) {
    return Status::InvalidArgument("TotalWithTax(amount, region)");
  }
  return Value(args[0].AsDouble() *
               (1.0 + RateForRegion(args[1].AsString())));
}

}  // namespace phoenix::bookstore
