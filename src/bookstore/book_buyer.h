#ifndef PHOENIX_BOOKSTORE_BOOK_BUYER_H_
#define PHOENIX_BOOKSTORE_BOOK_BUYER_H_

#include <string>

#include "bookstore/setup.h"
#include "core/phoenix.h"

namespace phoenix::bookstore {

// The console client of Figure 10 — an *external* component (no Phoenix
// guarantees). The paper's demo displayed text menus; for experiments it
// was rewritten to generate inputs automatically. This class provides both:
// scripted operations with human-readable transcripts, used by the
// bookstore example, and the silent automated session lives in setup.h's
// RunBuyerSession.
class BookBuyer {
 public:
  BookBuyer(Simulation* sim, const Deployment* deployment,
            std::string buyer_name, std::string region,
            std::string client_machine);

  // Each operation returns a printable transcript line (or a Status error).
  Result<std::string> SearchBooks(const std::string& keyword);
  Result<std::string> AddFirstHitFromEachStore(const std::string& keyword);
  Result<std::string> ShowBasket();
  Result<std::string> TotalWithTax();
  Result<std::string> Checkout();
  Result<std::string> EmptyBasket();

  ExternalClient& client() { return client_; }

 private:
  Simulation* sim_;
  const Deployment* deployment_;
  std::string buyer_name_;
  std::string region_;
  ExternalClient client_;
};

}  // namespace phoenix::bookstore

#endif  // PHOENIX_BOOKSTORE_BOOK_BUYER_H_
