#ifndef PHOENIX_BOOKSTORE_BOOKSTORE_H_
#define PHOENIX_BOOKSTORE_BOOKSTORE_H_

#include "core/phoenix.h"

namespace phoenix::bookstore {

// A persistent bookstore (Figure 10): the inventory of one store. The
// catalog is generated deterministically from the store's label at
// Initialize time; purchases mutate stock counts, which are exactly the
// state the recovery machinery must preserve.
//
// Methods:
//   Search(keyword) -> list of [book_id, title, price, stock]   (read-only)
//   GetBook(book_id) -> [book_id, title, price, stock]          (read-only)
//   Buy(book_id, qty) -> remaining stock; fails when out of stock
//   Reserve(book_id, qty) -> the book entry; holds stock for a basket
//   Release(book_id, qty) -> new stock; returns a reservation
//   ConfirmSale(book_id, qty) -> total sold; turns a reservation into a sale
//   Restock(book_id, qty) -> new stock
//   TotalSold() -> int                                          (read-only)
class Bookstore : public Component {
 public:
  Bookstore() = default;

  void RegisterMethods(MethodRegistry& methods) override;
  void RegisterFields(FieldRegistry& fields) override;
  // args: [label]
  Status Initialize(const ArgList& args) override;

 private:
  Result<Value> Search(const ArgList& args);
  Result<Value> GetBook(const ArgList& args);
  Result<Value> Buy(const ArgList& args);
  Result<Value> Reserve(const ArgList& args);
  Result<Value> Release(const ArgList& args);
  Result<Value> ConfirmSale(const ArgList& args);
  Result<Value> Restock(const ArgList& args);

  // Catalog entry layout inside catalog_: [id, title, price, stock].
  Value::List* FindEntry(int64_t book_id);

  std::string label_;
  Value catalog_{Value::List{}};
  int64_t total_sold_ = 0;
};

}  // namespace phoenix::bookstore

#endif  // PHOENIX_BOOKSTORE_BOOKSTORE_H_
