#include "bookstore/basket_manager.h"

namespace phoenix::bookstore {

void BasketManager::RegisterMethods(MethodRegistry& methods) {
  methods.Register("Add", [this](const ArgList& a) { return Add(a); });
  methods.Register(
      "Items", [this](const ArgList&) -> Result<Value> { return items_; },
      MethodTraits{.read_only = true});
  methods.Register(
      "Total",
      [this](const ArgList&) -> Result<Value> {
        double total = 0.0;
        for (const Value& item : items_.AsList()) {
          total += item.AsList()[3].AsDouble();
        }
        return Value(total);
      },
      MethodTraits{.read_only = true});
  methods.Register("Clear", [this](const ArgList& a) { return Clear(a); });
}

void BasketManager::RegisterFields(FieldRegistry& fields) {
  fields.RegisterValue("items", &items_);
}

Result<Value> BasketManager::Add(const ArgList& args) {
  if (args.size() != 4) {
    return Status::InvalidArgument("Add(store_uri, book_id, title, price)");
  }
  items_.MutableList().push_back(Value(Value::List(args)));
  return Value(static_cast<int64_t>(items_.AsList().size()));
}

Result<Value> BasketManager::Clear(const ArgList&) {
  int64_t removed = static_cast<int64_t>(items_.AsList().size());
  items_ = Value(Value::List{});
  return Value(removed);
}

}  // namespace phoenix::bookstore
