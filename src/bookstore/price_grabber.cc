#include "bookstore/price_grabber.h"

namespace phoenix::bookstore {

void PriceGrabber::RegisterMethods(MethodRegistry& methods) {
  methods.Register("Search", [this](const ArgList& a) { return Search(a); });
  methods.Register("BestPrice",
                   [this](const ArgList& a) { return BestPrice(a); });
}

void PriceGrabber::RegisterFields(FieldRegistry& fields) {
  fields.RegisterValue("store_uris", &store_uris_);
}

Status PriceGrabber::Initialize(const ArgList& args) {
  Value::List uris;
  for (const Value& v : args) {
    if (v.kind() != Value::Kind::kString) {
      return Status::InvalidArgument("PriceGrabber(store_uri...)");
    }
    uris.push_back(v);
  }
  store_uris_ = Value(std::move(uris));
  return Status::OK();
}

Result<Value> PriceGrabber::Search(const ArgList& args) {
  if (args.size() != 1 || args[0].kind() != Value::Kind::kString) {
    return Status::InvalidArgument("Search(keyword)");
  }
  Value::List rolled_up;
  for (const Value& store : store_uris_.AsList()) {
    PHX_ASSIGN_OR_RETURN(Value hits,
                         Call(store.AsString(), "Search", {args[0]}));
    for (const Value& hit : hits.AsList()) {
      const Value::List& book = hit.AsList();
      Value::List row;
      row.push_back(store);        // store_uri
      row.push_back(book[0]);      // book_id
      row.push_back(book[1]);      // title
      row.push_back(book[2]);      // price
      rolled_up.push_back(Value(std::move(row)));
    }
  }
  return Value(std::move(rolled_up));
}

Result<Value> PriceGrabber::BestPrice(const ArgList& args) {
  PHX_ASSIGN_OR_RETURN(Value all, Search(args));
  if (all.AsList().empty()) return Status::NotFound("no hits");
  const Value* best = nullptr;
  for (const Value& row : all.AsList()) {
    if (best == nullptr ||
        row.AsList()[3].AsDouble() < best->AsList()[3].AsDouble()) {
      best = &row;
    }
  }
  return *best;
}

}  // namespace phoenix::bookstore
