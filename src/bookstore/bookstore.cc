#include "bookstore/bookstore.h"

#include <array>

#include "common/strings.h"

namespace phoenix::bookstore {
namespace {

// Title vocabulary; every store carries some "recovery" titles so the
// paper's keyword search finds hits in each store.
constexpr std::array<const char*, 10> kTopics = {
    "recovery",     "transaction", "logging",   "checkpoint", "replication",
    "concurrency",  "indexing",    "queues",    "recovery",   "optimization"};

}  // namespace

void Bookstore::RegisterMethods(MethodRegistry& methods) {
  methods.Register(
      "Search", [this](const ArgList& a) { return Search(a); },
      MethodTraits{.read_only = true});
  methods.Register(
      "GetBook", [this](const ArgList& a) { return GetBook(a); },
      MethodTraits{.read_only = true});
  methods.Register("Buy", [this](const ArgList& a) { return Buy(a); });
  methods.Register("Reserve",
                   [this](const ArgList& a) { return Reserve(a); });
  methods.Register("Release",
                   [this](const ArgList& a) { return Release(a); });
  methods.Register("ConfirmSale",
                   [this](const ArgList& a) { return ConfirmSale(a); });
  methods.Register("Restock",
                   [this](const ArgList& a) { return Restock(a); });
  methods.Register(
      "TotalSold",
      [this](const ArgList&) -> Result<Value> { return Value(total_sold_); },
      MethodTraits{.read_only = true});
}

void Bookstore::RegisterFields(FieldRegistry& fields) {
  fields.RegisterString("label", &label_);
  fields.RegisterValue("catalog", &catalog_);
  fields.RegisterInt("total_sold", &total_sold_);
}

Status Bookstore::Initialize(const ArgList& args) {
  if (args.size() != 1 || args[0].kind() != Value::Kind::kString) {
    return Status::InvalidArgument("Bookstore(label)");
  }
  label_ = args[0].AsString();
  // Deterministic catalog: 10 titles derived from the label.
  Value::List catalog;
  int64_t price_seed = 0;
  for (char c : label_) price_seed += c;
  for (int64_t i = 0; i < static_cast<int64_t>(kTopics.size()); ++i) {
    Value::List entry;
    entry.push_back(Value(i + 1));
    entry.push_back(
        Value(StrCat("The ", kTopics[i], " book (", label_, " ed.)")));
    entry.push_back(Value(static_cast<double>((price_seed + 13 * i) % 40 + 10)));
    entry.push_back(Value(int64_t{25}));
    catalog.push_back(Value(std::move(entry)));
  }
  catalog_ = Value(std::move(catalog));
  return Status::OK();
}

Value::List* Bookstore::FindEntry(int64_t book_id) {
  for (Value& entry : catalog_.MutableList()) {
    if (entry.AsList()[0].AsInt() == book_id) return &entry.MutableList();
  }
  return nullptr;
}

Result<Value> Bookstore::Search(const ArgList& args) {
  if (args.size() != 1 || args[0].kind() != Value::Kind::kString) {
    return Status::InvalidArgument("Search(keyword)");
  }
  Work(0.01);  // catalog scan
  const std::string& keyword = args[0].AsString();
  Value::List hits;
  for (const Value& entry : catalog_.AsList()) {
    if (entry.AsList()[1].AsString().find(keyword) != std::string::npos) {
      hits.push_back(entry);
    }
  }
  return Value(std::move(hits));
}

Result<Value> Bookstore::GetBook(const ArgList& args) {
  if (args.size() != 1 || args[0].kind() != Value::Kind::kInt) {
    return Status::InvalidArgument("GetBook(book_id)");
  }
  Value::List* entry = FindEntry(args[0].AsInt());
  if (entry == nullptr) {
    return Status::NotFound(StrCat("no book ", args[0].AsInt()));
  }
  return Value(*entry);
}

Result<Value> Bookstore::Buy(const ArgList& args) {
  if (args.size() != 2 || args[0].kind() != Value::Kind::kInt ||
      args[1].kind() != Value::Kind::kInt) {
    return Status::InvalidArgument("Buy(book_id, qty)");
  }
  Value::List* entry = FindEntry(args[0].AsInt());
  if (entry == nullptr) {
    return Status::NotFound(StrCat("no book ", args[0].AsInt()));
  }
  int64_t qty = args[1].AsInt();
  int64_t stock = (*entry)[3].AsInt();
  if (qty <= 0) return Status::InvalidArgument("qty must be positive");
  if (stock < qty) {
    return Status::FailedPrecondition(
        StrCat("only ", stock, " left of book ", args[0].AsInt()));
  }
  (*entry)[3] = Value(stock - qty);
  total_sold_ += qty;
  return Value(stock - qty);
}

Result<Value> Bookstore::Reserve(const ArgList& args) {
  if (args.size() != 2 || args[0].kind() != Value::Kind::kInt ||
      args[1].kind() != Value::Kind::kInt) {
    return Status::InvalidArgument("Reserve(book_id, qty)");
  }
  Value::List* entry = FindEntry(args[0].AsInt());
  if (entry == nullptr) {
    return Status::NotFound(StrCat("no book ", args[0].AsInt()));
  }
  int64_t qty = args[1].AsInt();
  int64_t stock = (*entry)[3].AsInt();
  if (qty <= 0) return Status::InvalidArgument("qty must be positive");
  if (stock < qty) {
    return Status::FailedPrecondition(
        StrCat("only ", stock, " left of book ", args[0].AsInt()));
  }
  (*entry)[3] = Value(stock - qty);
  return Value(*entry);
}

Result<Value> Bookstore::Release(const ArgList& args) {
  if (args.size() != 2 || args[0].kind() != Value::Kind::kInt ||
      args[1].kind() != Value::Kind::kInt) {
    return Status::InvalidArgument("Release(book_id, qty)");
  }
  Value::List* entry = FindEntry(args[0].AsInt());
  if (entry == nullptr) {
    return Status::NotFound(StrCat("no book ", args[0].AsInt()));
  }
  int64_t stock = (*entry)[3].AsInt() + args[1].AsInt();
  (*entry)[3] = Value(stock);
  return Value(stock);
}

Result<Value> Bookstore::ConfirmSale(const ArgList& args) {
  if (args.size() != 2 || args[0].kind() != Value::Kind::kInt ||
      args[1].kind() != Value::Kind::kInt) {
    return Status::InvalidArgument("ConfirmSale(book_id, qty)");
  }
  if (FindEntry(args[0].AsInt()) == nullptr) {
    return Status::NotFound(StrCat("no book ", args[0].AsInt()));
  }
  total_sold_ += args[1].AsInt();
  return Value(total_sold_);
}

Result<Value> Bookstore::Restock(const ArgList& args) {
  if (args.size() != 2 || args[0].kind() != Value::Kind::kInt ||
      args[1].kind() != Value::Kind::kInt) {
    return Status::InvalidArgument("Restock(book_id, qty)");
  }
  Value::List* entry = FindEntry(args[0].AsInt());
  if (entry == nullptr) {
    return Status::NotFound(StrCat("no book ", args[0].AsInt()));
  }
  int64_t stock = (*entry)[3].AsInt() + args[1].AsInt();
  (*entry)[3] = Value(stock);
  return Value(stock);
}

}  // namespace phoenix::bookstore
