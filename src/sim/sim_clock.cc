#include "sim/sim_clock.h"
