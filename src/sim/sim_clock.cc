#include "sim/sim_clock.h"

#include <algorithm>

#include "common/macros.h"

namespace phoenix {

void SimClock::BeginParallel(size_t lanes) {
  PHX_CHECK(!in_parallel_ && "parallel clock regions cannot nest");
  PHX_CHECK(lanes > 0);
  in_parallel_ = true;
  region_start_ = now_ms_;
  lane_ = -1;
  lane_ms_.assign(lanes, 0.0);
}

void SimClock::SetLane(int lane) {
  PHX_CHECK(in_parallel_);
  PHX_CHECK(lane >= -1 && lane < static_cast<int>(lane_ms_.size()));
  lane_ = lane;
}

void SimClock::AdvanceLaneToMs(double abs_ms) {
  PHX_CHECK(in_parallel_ && lane_ >= 0);
  double local = abs_ms - region_start_;
  if (local > lane_ms_[lane_]) lane_ms_[lane_] = local;
}

double SimClock::EndParallel() {
  PHX_CHECK(in_parallel_);
  double makespan = 0.0;
  for (double lane : lane_ms_) makespan = std::max(makespan, lane);
  now_ms_ = region_start_ + makespan;
  in_parallel_ = false;
  lane_ = -1;
  lane_ms_.clear();
  return makespan;
}

}  // namespace phoenix
