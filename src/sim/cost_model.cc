#include "sim/cost_model.h"
