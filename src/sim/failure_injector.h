#ifndef PHOENIX_SIM_FAILURE_INJECTOR_H_
#define PHOENIX_SIM_FAILURE_INJECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/random.h"

namespace phoenix {

// Where in the message protocol a crash is injected. These refine the three
// failure points of Figure 2 (a failure "before message 3", "after message 3
// but before message 2", "after message 2") with the log-force boundaries
// that matter for the external-client window of vulnerability (§3.1.2).
enum class FailurePoint : int {
  kBeforeIncomingLogged = 0,  // message 1 arrived, not yet logged
  kAfterIncomingLogged = 1,   // message 1 logged, before execution
  kBeforeOutgoingSend = 2,    // Fig. 2 point 1: before message 3 leaves
  kAfterOutgoingReply = 3,    // Fig. 2 point 2: message 4 received
  kBeforeReplySend = 4,       // processing done, before message 2 is sent
  kAfterReplySend = 5,        // Fig. 2 point 3: message 2 already sent
  kDuringStateSave = 6,       // mid context-state save
  kDuringCheckpoint = 7,      // mid process checkpoint (after begin record)
  kDuringGroupFlush = 8,      // mid group-commit flush: the whole parked
                              // batch loses its unforced tail at once

  // Recovery-phase points: recovery itself is a fault domain. These hooks
  // only fire when RuntimeOptions.inject_failures_during_recovery is set
  // (otherwise the recovering process skips the injector entirely and the
  // hit counters below stay untouched).
  kDuringRecoveryAnalysis = 9,   // pass-1 analysis scan, per record
  kDuringRecoveryRestore = 10,   // checkpoint-state reinstatement, per ctx
  kBetweenReplayUnits = 11,      // pass 2, after each replayed unit
  kDuringEndOfLogFlush = 12,     // end-of-log flush of pending finals
};

constexpr int kNumFailurePoints = 13;

// Returns a short name for the failure point (for test diagnostics).
const char* FailurePointName(FailurePoint point);

// Storage attacks on a process's well-known recovery files, applied by the
// recovery supervisor *between* recovery attempts: the process died, an
// attempt failed, and the disk rots under the retry.
enum class RecoveryAttack : int {
  kCorruptWellKnownFile = 0,    // flip bits in <log>.wkf
  kCorruptNewestStateRecord = 1,  // flip bits in the newest readable
                                  // context-state record
  kTearStableTail = 2,          // shear bytes off the stable tail (clamped
                                // to the externalized floor, as all tears)
};

// Returns a short name for the attack kind (for reports and diagnostics).
const char* RecoveryAttackName(RecoveryAttack kind);

// Deterministic crash scheduler. The runtime consults it at each hook; when
// a trigger fires the hosting process is killed on the spot: volatile state
// and unforced log buffers are dropped, the stable log survives.
class FailureInjector {
 public:
  FailureInjector() : rng_(0) {}

  FailureInjector(const FailureInjector&) = delete;
  FailureInjector& operator=(const FailureInjector&) = delete;

  // Crash process `process_id` on `machine` the `fire_on_hit`-th time it
  // reaches `point` counted from NOW (1-based, relative to registration, so
  // setup traffic that already touched the hook does not shift schedules;
  // counts persist across restarts).
  void AddTrigger(const std::string& machine, uint32_t process_id,
                  FailurePoint point, uint64_t fire_on_hit = 1);

  // Additionally crash at any hook with probability `p` (seeded — random
  // schedules are still reproducible).
  void EnableRandomCrashes(double p, uint64_t seed);

  // Torn-tail injection: with probability `p`, a crash also tears up to
  // `max_tear_bytes` off the end of the crashing process's *stable* log —
  // a partially completed sector write. The runtime clamps the tear to the
  // process's externalized floor (bytes whose effects already left the
  // process can never be un-written by a torn sector; they were stable
  // before the send).
  void EnableTornTails(double p, uint64_t seed, uint32_t max_tear_bytes = 48);

  // Consulted when a process dies: bytes to tear off its stable tail
  // (0 = none). Consumes randomness only when torn tails are enabled.
  uint64_t MaybeTearBytes();

  // Tear decisions that returned nonzero so far.
  uint64_t torn_tails_fired() const { return torn_tails_fired_; }

  // Called by the runtime at each hook. True => the process must die now.
  bool ShouldCrash(const std::string& machine, uint32_t process_id,
                   FailurePoint point);

  // Number of crashes this injector has caused so far.
  uint64_t crashes_fired() const { return crashes_fired_; }

  // Schedule a storage attack against `process_id`'s recovery files,
  // applied by the recovery supervisor just before recovery attempt
  // `before_attempt` (1-based: 1 = before the first attempt). Attempt
  // numbering restarts with each supervisor invocation, not each trigger
  // registration — schedules are normally installed while the target is
  // already dead.
  void AddRecoveryAttack(const std::string& machine, uint32_t process_id,
                         uint64_t before_attempt, RecoveryAttack kind);

  // Consumes and returns the attacks scheduled for `attempt` (in
  // registration order). Called by the recovery supervisor.
  std::vector<RecoveryAttack> TakeRecoveryAttacks(const std::string& machine,
                                                  uint32_t process_id,
                                                  uint64_t attempt);

  // Attacks handed out by TakeRecoveryAttacks so far.
  uint64_t recovery_attacks_fired() const { return recovery_attacks_fired_; }

  // Hook hit counts, for tests asserting a schedule actually executed.
  uint64_t HitCount(const std::string& machine, uint32_t process_id,
                    FailurePoint point) const;

  void Clear();

 private:
  using Key = std::tuple<std::string, uint32_t, int>;
  std::map<Key, uint64_t> hit_counts_;
  std::map<Key, std::vector<uint64_t>> triggers_;  // pending fire_on_hit lists
  // (machine, pid) -> pending (before_attempt, kind) attacks.
  std::map<std::pair<std::string, uint32_t>,
           std::vector<std::pair<uint64_t, RecoveryAttack>>>
      recovery_attacks_;
  uint64_t recovery_attacks_fired_ = 0;
  double random_p_ = 0.0;
  Random rng_;
  uint64_t crashes_fired_ = 0;
  double torn_p_ = 0.0;
  uint32_t max_tear_bytes_ = 48;
  Random tear_rng_{0};
  uint64_t torn_tails_fired_ = 0;
};

}  // namespace phoenix

#endif  // PHOENIX_SIM_FAILURE_INJECTOR_H_
