#ifndef PHOENIX_SIM_FAILURE_INJECTOR_H_
#define PHOENIX_SIM_FAILURE_INJECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"

namespace phoenix {

// Where in the message protocol a crash is injected. These refine the three
// failure points of Figure 2 (a failure "before message 3", "after message 3
// but before message 2", "after message 2") with the log-force boundaries
// that matter for the external-client window of vulnerability (§3.1.2).
enum class FailurePoint : int {
  kBeforeIncomingLogged = 0,  // message 1 arrived, not yet logged
  kAfterIncomingLogged = 1,   // message 1 logged, before execution
  kBeforeOutgoingSend = 2,    // Fig. 2 point 1: before message 3 leaves
  kAfterOutgoingReply = 3,    // Fig. 2 point 2: message 4 received
  kBeforeReplySend = 4,       // processing done, before message 2 is sent
  kAfterReplySend = 5,        // Fig. 2 point 3: message 2 already sent
  kDuringStateSave = 6,       // mid context-state save
  kDuringCheckpoint = 7,      // mid process checkpoint (after begin record)
  kDuringGroupFlush = 8,      // mid group-commit flush: the whole parked
                              // batch loses its unforced tail at once
};

constexpr int kNumFailurePoints = 9;

// Returns a short name for the failure point (for test diagnostics).
const char* FailurePointName(FailurePoint point);

// Deterministic crash scheduler. The runtime consults it at each hook; when
// a trigger fires the hosting process is killed on the spot: volatile state
// and unforced log buffers are dropped, the stable log survives.
class FailureInjector {
 public:
  FailureInjector() : rng_(0) {}

  FailureInjector(const FailureInjector&) = delete;
  FailureInjector& operator=(const FailureInjector&) = delete;

  // Crash process `process_id` on `machine` the `fire_on_hit`-th time it
  // reaches `point` counted from NOW (1-based, relative to registration, so
  // setup traffic that already touched the hook does not shift schedules;
  // counts persist across restarts).
  void AddTrigger(const std::string& machine, uint32_t process_id,
                  FailurePoint point, uint64_t fire_on_hit = 1);

  // Additionally crash at any hook with probability `p` (seeded — random
  // schedules are still reproducible).
  void EnableRandomCrashes(double p, uint64_t seed);

  // Torn-tail injection: with probability `p`, a crash also tears up to
  // `max_tear_bytes` off the end of the crashing process's *stable* log —
  // a partially completed sector write. The runtime clamps the tear to the
  // process's externalized floor (bytes whose effects already left the
  // process can never be un-written by a torn sector; they were stable
  // before the send).
  void EnableTornTails(double p, uint64_t seed, uint32_t max_tear_bytes = 48);

  // Consulted when a process dies: bytes to tear off its stable tail
  // (0 = none). Consumes randomness only when torn tails are enabled.
  uint64_t MaybeTearBytes();

  // Tear decisions that returned nonzero so far.
  uint64_t torn_tails_fired() const { return torn_tails_fired_; }

  // Called by the runtime at each hook. True => the process must die now.
  bool ShouldCrash(const std::string& machine, uint32_t process_id,
                   FailurePoint point);

  // Number of crashes this injector has caused so far.
  uint64_t crashes_fired() const { return crashes_fired_; }

  // Hook hit counts, for tests asserting a schedule actually executed.
  uint64_t HitCount(const std::string& machine, uint32_t process_id,
                    FailurePoint point) const;

  void Clear();

 private:
  using Key = std::tuple<std::string, uint32_t, int>;
  std::map<Key, uint64_t> hit_counts_;
  std::map<Key, std::vector<uint64_t>> triggers_;  // pending fire_on_hit lists
  double random_p_ = 0.0;
  Random rng_;
  uint64_t crashes_fired_ = 0;
  double torn_p_ = 0.0;
  uint32_t max_tear_bytes_ = 48;
  Random tear_rng_{0};
  uint64_t torn_tails_fired_ = 0;
};

}  // namespace phoenix

#endif  // PHOENIX_SIM_FAILURE_INJECTOR_H_
