#include "sim/network_model.h"

#include <algorithm>

namespace phoenix {

const char* NetLegName(NetLeg leg) {
  return leg == NetLeg::kCall ? "call" : "reply";
}

void NetworkFaultPlan::AddDropTrigger(const std::string& src,
                                      const std::string& dst,
                                      const std::string& method, NetLeg leg,
                                      uint64_t nth) {
  TriggerKey key(src, dst, method, static_cast<int>(leg));
  // Relative to the hits already consumed at registration time, mirroring
  // FailureInjector::AddTrigger: setup traffic does not shift schedules.
  triggers_[key].push_back(hit_counts_[key] + nth);
}

const LinkFaults& NetworkFaultPlan::FaultsFor(const std::string& src,
                                              const std::string& dst) const {
  auto it = link_faults_.find({src, dst});
  return it == link_faults_.end() ? default_faults_ : it->second;
}

bool NetworkFaultPlan::ConsumeTrigger(const std::string& src,
                                      const std::string& dst,
                                      const std::string& method, NetLeg leg) {
  if (triggers_.empty()) return false;
  bool fired = false;
  // A message matches both its exact-method triggers and any-method ("")
  // triggers; each keeps its own hit count.
  for (const std::string& m : {method, std::string()}) {
    TriggerKey key(src, dst, m, static_cast<int>(leg));
    auto it = triggers_.find(key);
    bool counted = it != triggers_.end() || hit_counts_.count(key) > 0;
    if (!counted && m.empty()) continue;  // nothing registered for any-method
    if (it == triggers_.end() && !counted) continue;
    uint64_t hits = ++hit_counts_[key];
    if (it == triggers_.end()) continue;
    auto& pending = it->second;
    auto match = std::find(pending.begin(), pending.end(), hits);
    if (match != pending.end()) {
      pending.erase(match);
      fired = true;
    }
  }
  return fired;
}

void NetworkFaultPlan::Clear() {
  default_faults_ = LinkFaults{};
  link_faults_.clear();
  hit_counts_.clear();
  triggers_.clear();
}

NetworkDelivery NetworkModel::DecideDelivery(const std::string& src,
                                             const std::string& dst,
                                             const std::string& method,
                                             NetLeg leg) {
  NetworkDelivery out;
  if (fault_plan_.empty()) return out;

  if (fault_plan_.ConsumeTrigger(src, dst, method, leg)) {
    out.drop = true;
    ++messages_dropped_;
    return out;
  }

  const LinkFaults& faults = fault_plan_.FaultsFor(src, dst);
  if (!faults.any()) return out;

  // One fixed draw order per message keeps the stream deterministic
  // regardless of which faults fire.
  if (faults.drop_p > 0.0 && rng_.Bernoulli(faults.drop_p)) {
    out.drop = true;
    ++messages_dropped_;
    return out;
  }
  if (faults.dup_p > 0.0 && leg == NetLeg::kCall &&
      rng_.Bernoulli(faults.dup_p)) {
    out.duplicate = true;
    ++messages_duplicated_;
  }
  if (faults.delay_jitter_ms > 0.0) {
    double extra = rng_.NextDouble() * faults.delay_jitter_ms;
    if (extra > 0.0) {
      out.extra_delay_ms = extra;
      ++messages_delayed_;
    }
  }
  return out;
}

}  // namespace phoenix
