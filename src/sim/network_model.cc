#include "sim/network_model.h"
