#include "sim/disk_model.h"

#include <cmath>

namespace phoenix {

DiskModel::DiskModel(const DiskParams& params, uint64_t seed)
    : params_(params), rng_(seed) {
  // This drive's actual rotation period, within spindle tolerance.
  double u = 2.0 * rng_.NextDouble() - 1.0;
  period_ms_ = params_.rotation_ms * (1.0 + params_.spindle_tolerance * u);
}

namespace {

void Accumulate(DiskModel::WriteBreakdown& total,
                const DiskModel::WriteBreakdown& one) {
  total.seek_ms += one.seek_ms;
  total.settle_ms += one.settle_ms;
  total.rotational_wait_ms += one.rotational_wait_ms;
  total.transfer_ms += one.transfer_ms;
  total.cached_ms += one.cached_ms;
  total.total_ms += one.total_ms;
}

}  // namespace

double DiskModel::WriteLatencyMs(double now_ms, size_t bytes) {
  ++total_writes_;
  total_bytes_ += bytes;

  if (params_.write_cache_enabled) {
    // Acknowledged from the controller cache: bus transfer + fixed overhead,
    // no rotational wait (Table 6, "write cache enabled").
    double latency =
        params_.cached_write_ms + static_cast<double>(bytes) / 133000.0;
    total_media_time_ms_ += latency;
    last_breakdown_ = WriteBreakdown{};
    last_breakdown_.cached_ms = latency;
    last_breakdown_.total_ms = latency;
    Accumulate(total_breakdown_, last_breakdown_);
    return latency;
  }

  const double rotation = period_ms_;
  double transfer = static_cast<double>(bytes) / params_.media_rate_bytes_per_ms;

  // Occasional track-to-track seek when the sequential append crosses a
  // track boundary.
  double seek = 0.0;
  track_fill_bytes_ += bytes;
  if (track_fill_bytes_ >= params_.track_capacity_bytes) {
    track_fill_bytes_ %= params_.track_capacity_bytes;
    seek = params_.track_to_track_seek_ms;
  }

  // Small head-settle jitter so interleaved workloads do not phase-lock.
  double settle = 0.3 * rng_.NextDouble();

  // Rotational wait until the target sector passes under the head again.
  double phase_now = std::fmod(now_ms + seek + settle, rotation);
  double wait = std::fmod(next_sector_phase_ms_ - phase_now + rotation, rotation);

  double latency = seek + settle + wait + transfer;
  next_sector_phase_ms_ = std::fmod(now_ms + latency, rotation);
  total_media_time_ms_ += latency;
  last_breakdown_ = WriteBreakdown{};
  last_breakdown_.seek_ms = seek;
  last_breakdown_.settle_ms = settle;
  last_breakdown_.rotational_wait_ms = wait;
  last_breakdown_.transfer_ms = transfer;
  last_breakdown_.total_ms = latency;
  Accumulate(total_breakdown_, last_breakdown_);
  return latency;
}

}  // namespace phoenix
