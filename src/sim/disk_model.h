#ifndef PHOENIX_SIM_DISK_MODEL_H_
#define PHOENIX_SIM_DISK_MODEL_H_

#include <cstddef>
#include <cstdint>

#include "common/random.h"

namespace phoenix {

// Geometry and timing of the log disk, defaulted to the paper's MAXTOR
// 6L040J2 (Table 3): 7200 RPM (8.33 ms/rotation), 0.8 ms track-to-track
// seek, ~30 MB/s media rate.
struct DiskParams {
  double rotation_ms = 60000.0 / 7200.0;  // 8.333 ms
  // Spindle-speed tolerance: each drive's actual period deviates by up to
  // this fraction (seeded per disk). Irrelevant to a single disk, but it
  // makes the phases of two different machines' disks drift past each
  // other, so writes triggered by cross-machine round trips land at
  // effectively random angles — the average half-rotation (4.17 ms) wait
  // the paper measures for the remote cases (§5.2.2), instead of the
  // full-rotation miss sequential same-disk appends suffer.
  double spindle_tolerance = 0.01;
  double track_to_track_seek_ms = 0.8;
  double media_rate_bytes_per_ms = 30000.0;  // ~30 MB/s sequential media rate
  size_t track_capacity_bytes = 256 * 1024;
  // Controller/bus latency of a write acknowledged from the on-disk write
  // cache (Table 6's "write cache enabled" column removes the media cost).
  double cached_write_ms = 0.55;
  bool write_cache_enabled = false;
};

// Rotational model of a log disk doing sequential appends.
//
// The key mechanism (Section 5.2.2 / Figure 9): log appends are laid out on
// consecutive sectors of a track. When a write finishes, the head is exactly
// at the start of the next append's target sector; by the time the next
// unbuffered write is issued the head has moved past it, so the write waits
// until the target sector comes around again — nearly a full rotation for
// back-to-back writes, and a partial rotation when other work (network round
// trips, the other machine's force) elapses in between. This single model
// reproduces Figure 9's staircase, the ~8.5 ms per force of the local
// experiments, and the ~5-6 ms per force of the remote ones.
class DiskModel {
 public:
  // Where the milliseconds of one write went (observability: the tracer
  // attaches this to every force event, and the metrics registry accumulates
  // the totals). cached_ms is the whole latency when the write cache
  // answers; the mechanical fields are then zero.
  struct WriteBreakdown {
    double seek_ms = 0;
    double settle_ms = 0;
    double rotational_wait_ms = 0;
    double transfer_ms = 0;
    double cached_ms = 0;
    double total_ms = 0;
  };

  // `seed` drives small per-write seek jitter (head settling), which keeps
  // interleaved workloads from phase-locking artificially.
  explicit DiskModel(const DiskParams& params, uint64_t seed);

  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  // Latency of appending `bytes` to the log if issued at time `now_ms`.
  // Advances the disk's internal position state.
  double WriteLatencyMs(double now_ms, size_t bytes);

  // Statistics.
  uint64_t total_writes() const { return total_writes_; }
  uint64_t total_bytes() const { return total_bytes_; }
  double total_media_time_ms() const { return total_media_time_ms_; }

  // Attribution of the most recent write and the accumulated totals.
  const WriteBreakdown& last_breakdown() const { return last_breakdown_; }
  const WriteBreakdown& total_breakdown() const { return total_breakdown_; }

  const DiskParams& params() const { return params_; }
  void set_write_cache_enabled(bool enabled) {
    params_.write_cache_enabled = enabled;
  }

  // This drive's actual rotation period (rotation_ms within tolerance).
  double period_ms() const { return period_ms_; }

 private:
  DiskParams params_;
  Random rng_;
  double period_ms_ = 0.0;
  // Rotational offset (in ms within a rotation) at which the next sequential
  // sector begins.
  double next_sector_phase_ms_ = 0.0;
  size_t track_fill_bytes_ = 0;
  uint64_t total_writes_ = 0;
  uint64_t total_bytes_ = 0;
  double total_media_time_ms_ = 0.0;
  WriteBreakdown last_breakdown_;
  WriteBreakdown total_breakdown_;
};

}  // namespace phoenix

#endif  // PHOENIX_SIM_DISK_MODEL_H_
