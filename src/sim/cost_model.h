#ifndef PHOENIX_SIM_COST_MODEL_H_
#define PHOENIX_SIM_COST_MODEL_H_

namespace phoenix {

// CPU / software-path cost constants, in milliseconds, calibrated against the
// micro-measurements the paper reports for its testbed (2.2 GHz Pentium 4,
// .NET 1.0, Tables 4-7). Only *fixed software overheads* live here; every
// disk latency comes from the rotational DiskModel and every force/write
// COUNT comes from the actual logging code, so the experiment shapes emerge
// from mechanism rather than from these constants.
//
// Calibration sources:
//  - marshal_roundtrip_local_ms: Table 4 row 1 (External -> MarshalByRef,
//    0.593 ms round trip with no interception, no logging).
//  - interception_ms: Table 4 rows 3-4 (installing interceptors adds
//    ~0.08 ms even when they do nothing).
//  - type_attachment_ms: Section 5.2.3 ("~0.5 ms more overhead ... due to
//    the attachment to the message of information showing the sender's
//    component type", already including the server-known optimization).
//  - log_append_ms: Table 5 (Persistent->ReadOnly logs just the reply and
//    costs 0.15-0.2 ms more than Persistent->Functional).
//  - recovery constants: Section 5.4 (empty-log recovery ~492 ms; reading
//    creation records + constructing + registering ~80 ms; restoring a state
//    record ~60 ms more; replaying a call ~0.13-0.15 ms).
struct CostModel {
  // Marshal + unmarshal + context crossing for one call/reply round trip
  // between two contexts on the same machine (no interceptors).
  double marshal_roundtrip_local_ms = 0.59;

  // Added per round trip when message interceptors are installed at both
  // context boundaries (the hook cost itself, excluding any work they do).
  double interception_ms = 0.08;

  // Added per round trip when a Phoenix-typed client attaches sender-kind
  // information to its messages (and the server parses it / learns types).
  // External clients attach nothing. Includes the optimization where the
  // server omits its own attachment once the client says it already knows
  // the server's type.
  double type_attachment_ms = 0.50;

  // Writing one message record into the in-memory log buffer (no force).
  double log_append_ms = 0.15;

  // Interceptor bookkeeping for a force (building the force request; the
  // media time itself comes from DiskModel).
  double force_dispatch_ms = 0.02;

  // Pure in-context local method call (parent -> subordinate): an ordinary
  // virtual dispatch, ~3.4e-5 ms in the paper.
  double local_call_ms = 0.000034;

  // Serializing one component's fields into a context state record
  // (Section 5.3 measures ~1 ms of computational overhead per save for the
  // micro-benchmark's small state; we split it into a fixed part and a
  // per-byte part so bigger states cost more).
  double state_save_fixed_ms = 0.9;
  double state_save_per_byte_ms = 0.0002;

  // --- Recovery (Section 5.4) ---
  // Initializing the Phoenix runtime structures in a restarted process.
  double recovery_init_ms = 492.0;
  // Reading creation records, constructing the object, running the
  // constructor and registering the component.
  double recovery_create_ms = 80.0;
  // Restoring a context state record (deserializing fields, fixing refs).
  double recovery_restore_state_ms = 60.0;
  // Replaying one logged method call.
  double recovery_replay_call_ms = 0.13;
  // Scanning one log record during the two passes.
  double recovery_scan_record_ms = 0.002;
};

}  // namespace phoenix

#endif  // PHOENIX_SIM_COST_MODEL_H_
