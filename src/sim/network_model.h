#ifndef PHOENIX_SIM_NETWORK_MODEL_H_
#define PHOENIX_SIM_NETWORK_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"

namespace phoenix {

// 100 Mb/s switched Ethernet between the two test machines (Section 5.1).
struct NetworkParams {
  double one_way_latency_ms = 0.08;
  double bytes_per_ms = 12500.0;  // 100 Mb/s = 12.5 MB/s
};

// Which half of a call round trip a network fault hits: the request
// (message 1/3) or the response (message 2/4).
enum class NetLeg : int { kCall = 0, kReply = 1 };

const char* NetLegName(NetLeg leg);

// Fault rates for one directed machine-to-machine link. All rates are
// per-message; jitter adds a uniform extra delay in [0, delay_jitter_ms).
// Duplication applies to call messages only (a duplicated reply is
// indistinguishable from the original to a synchronous caller).
struct LinkFaults {
  double drop_p = 0.0;
  double dup_p = 0.0;
  double delay_jitter_ms = 0.0;

  bool any() const {
    return drop_p > 0.0 || dup_p > 0.0 || delay_jitter_ms > 0.0;
  }
};

// What the lossy network decided for one message.
struct NetworkDelivery {
  bool drop = false;
  bool duplicate = false;
  double extra_delay_ms = 0.0;
};

// Seeded, deterministic plan of network faults: per-link probabilistic
// drop/duplication/jitter plus targeted "drop the Nth message of method M on
// link src->dst" triggers mirroring FailureInjector::AddTrigger. A plan with
// nothing configured never consumes randomness, so fault-free runs are
// byte-identical to runs of builds without fault support.
class NetworkFaultPlan {
 public:
  NetworkFaultPlan() = default;

  // Faults for every link without an explicit per-link entry.
  void SetDefaultFaults(const LinkFaults& faults) { default_faults_ = faults; }

  // Faults for the directed link src -> dst (machine names).
  void SetLinkFaults(const std::string& src, const std::string& dst,
                     const LinkFaults& faults) {
    link_faults_[{src, dst}] = faults;
  }

  // Drop the `nth` message (1-based, counted from registration) of method
  // `method` travelling src -> dst on leg `leg`. Empty `method` matches any
  // method.
  void AddDropTrigger(const std::string& src, const std::string& dst,
                      const std::string& method, NetLeg leg,
                      uint64_t nth = 1);

  bool empty() const {
    return !default_faults_.any() && link_faults_.empty() &&
           triggers_.empty();
  }

  const LinkFaults& FaultsFor(const std::string& src,
                              const std::string& dst) const;

  // Consumes one trigger hit; true if a registered trigger fires.
  bool ConsumeTrigger(const std::string& src, const std::string& dst,
                      const std::string& method, NetLeg leg);

  void Clear();

 private:
  using TriggerKey = std::tuple<std::string, std::string, std::string, int>;

  LinkFaults default_faults_;
  std::map<std::pair<std::string, std::string>, LinkFaults> link_faults_;
  std::map<TriggerKey, uint64_t> hit_counts_;
  std::map<TriggerKey, std::vector<uint64_t>> triggers_;
};

// Charges transfer time for messages between machines. Calls within one
// machine (cross-process or cross-context) do not go through the network;
// their cost is covered by the marshalling constants in CostModel. With a
// fault plan installed it also decides, deterministically per seed, which
// messages are dropped, duplicated or delayed.
class NetworkModel {
 public:
  explicit NetworkModel(const NetworkParams& params)
      : params_(params), rng_(0) {}

  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  // Latency of one message of `bytes` between two machines.
  double TransferLatencyMs(size_t bytes) const {
    return params_.one_way_latency_ms +
           static_cast<double>(bytes) / params_.bytes_per_ms;
  }

  uint64_t total_messages() const { return total_messages_; }
  void CountMessage() { ++total_messages_; }

  // --- fault injection ---

  // Seeds the fault decision stream (the Simulation does this at
  // construction; re-seeding resets the stream).
  void SeedFaults(uint64_t seed) { rng_ = Random(seed); }

  NetworkFaultPlan& fault_plan() { return fault_plan_; }
  const NetworkFaultPlan& fault_plan() const { return fault_plan_; }
  bool faults_enabled() const { return !fault_plan_.empty(); }

  // Decides the fate of one message src -> dst. Consumes randomness only
  // when the link actually has faults configured, so plans that target one
  // link leave all other traffic (and the decision stream) untouched.
  NetworkDelivery DecideDelivery(const std::string& src,
                                 const std::string& dst,
                                 const std::string& method, NetLeg leg);

  // --- fault statistics ---
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t messages_duplicated() const { return messages_duplicated_; }
  uint64_t messages_delayed() const { return messages_delayed_; }

 private:
  NetworkParams params_;
  uint64_t total_messages_ = 0;
  NetworkFaultPlan fault_plan_;
  Random rng_;
  uint64_t messages_dropped_ = 0;
  uint64_t messages_duplicated_ = 0;
  uint64_t messages_delayed_ = 0;
};

}  // namespace phoenix

#endif  // PHOENIX_SIM_NETWORK_MODEL_H_
