#ifndef PHOENIX_SIM_NETWORK_MODEL_H_
#define PHOENIX_SIM_NETWORK_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace phoenix {

// 100 Mb/s switched Ethernet between the two test machines (Section 5.1).
struct NetworkParams {
  double one_way_latency_ms = 0.08;
  double bytes_per_ms = 12500.0;  // 100 Mb/s = 12.5 MB/s
};

// Charges transfer time for messages between machines. Calls within one
// machine (cross-process or cross-context) do not go through the network;
// their cost is covered by the marshalling constants in CostModel.
class NetworkModel {
 public:
  explicit NetworkModel(const NetworkParams& params) : params_(params) {}

  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  // Latency of one message of `bytes` between two machines.
  double TransferLatencyMs(size_t bytes) const {
    return params_.one_way_latency_ms +
           static_cast<double>(bytes) / params_.bytes_per_ms;
  }

  uint64_t total_messages() const { return total_messages_; }
  void CountMessage() { ++total_messages_; }

 private:
  NetworkParams params_;
  uint64_t total_messages_ = 0;
};

}  // namespace phoenix

#endif  // PHOENIX_SIM_NETWORK_MODEL_H_
