#ifndef PHOENIX_SIM_SIM_CLOCK_H_
#define PHOENIX_SIM_SIM_CLOCK_H_

#include <cstdint>

namespace phoenix {

// Discrete simulated clock, in milliseconds. The entire Phoenix runtime is
// single-threaded and synchronous (the paper's components are single-threaded
// by design — piece-wise determinism is the premise of replay), so elapsed
// time is modelled by explicitly advancing this clock as work is performed:
// marshalling, network transfer, disk rotation, replay, etc.
//
// All performance results in the benchmark harness are read off this clock,
// which makes every experiment exactly reproducible.
class SimClock {
 public:
  SimClock() = default;

  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  // Current simulated time in milliseconds since simulation start.
  double NowMs() const { return now_ms_; }

  // Advances the clock by `ms` (>= 0).
  void AdvanceMs(double ms) {
    if (ms > 0) now_ms_ += ms;
  }

 private:
  double now_ms_ = 0.0;
};

}  // namespace phoenix

#endif  // PHOENIX_SIM_SIM_CLOCK_H_
