#ifndef PHOENIX_SIM_SIM_CLOCK_H_
#define PHOENIX_SIM_SIM_CLOCK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace phoenix {

// Discrete simulated clock, in milliseconds. The entire Phoenix runtime is
// single-threaded and synchronous (the paper's components are single-threaded
// by design — piece-wise determinism is the premise of replay), so elapsed
// time is modelled by explicitly advancing this clock as work is performed:
// marshalling, network transfer, disk rotation, replay, etc.
//
// All performance results in the benchmark harness are read off this clock,
// which makes every experiment exactly reproducible.
//
// Parallel lanes: cooperative overlapping work (parallel recovery replay)
// needs elapsed time to be the *makespan* of the overlapped lanes, not their
// sum. Inside a BeginParallel/EndParallel region each lane accumulates its
// own local time on top of the region start; EndParallel folds the region
// back into the global clock as start + max(lane totals). Reads and
// advances off any lane (SetLane(-1), the scheduler/driver view) see the
// region start. Lane switching is explicit because the runtime is
// cooperative: exactly one lane executes at any instant.
class SimClock {
 public:
  SimClock() = default;

  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  // Current simulated time in milliseconds since simulation start. Inside a
  // parallel region this is the executing lane's local view.
  double NowMs() const {
    if (lane_ >= 0) return region_start_ + lane_ms_[lane_];
    return now_ms_;
  }

  // Advances the clock by `ms` (>= 0); charged to the executing lane inside
  // a parallel region.
  void AdvanceMs(double ms) {
    if (ms <= 0) return;
    if (lane_ >= 0) {
      lane_ms_[lane_] += ms;
    } else {
      now_ms_ += ms;
    }
  }

  // --- parallel lanes -----------------------------------------------------

  // Opens a parallel region with `lanes` lanes, all starting at the current
  // global time. Regions cannot nest. The caller stays on the driver view
  // (no lane selected) until SetLane.
  void BeginParallel(size_t lanes);

  // Selects which lane subsequent advances charge; -1 returns to the driver
  // view. A cooperative worker re-pins its lane every time it resumes.
  void SetLane(int lane);

  // Lane-local wait: lifts the executing lane's time to at least `abs_ms`
  // (an absolute time, e.g. another lane's completion point). Models
  // idling until a cross-lane dependency is satisfied.
  void AdvanceLaneToMs(double abs_ms);

  bool in_parallel() const { return in_parallel_; }

  // Closes the region: global time becomes start + max(lane totals) — the
  // makespan of the overlapped work. Returns that makespan.
  double EndParallel();

 private:
  double now_ms_ = 0.0;

  bool in_parallel_ = false;
  double region_start_ = 0.0;
  int lane_ = -1;
  std::vector<double> lane_ms_;
};

}  // namespace phoenix

#endif  // PHOENIX_SIM_SIM_CLOCK_H_
