#ifndef PHOENIX_SIM_STABLE_STORAGE_H_
#define PHOENIX_SIM_STABLE_STORAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace phoenix {

// Durable byte store standing in for the machines' filesystems. It is owned
// by the Simulation — NOT by any Process — so its contents survive simulated
// crashes, while everything a Process holds in memory (including unforced
// log buffers) is lost.
//
// Two kinds of objects:
//  - append-only logs (one per process, named "<machine>/proc<k>.log"), and
//  - small atomically-replaced files (the per-process "well-known file"
//    holding the LSN of the last flushed begin-checkpoint record, §4.3).
class StableStorage {
 public:
  StableStorage() = default;

  StableStorage(const StableStorage&) = delete;
  StableStorage& operator=(const StableStorage&) = delete;

  // Optional real durability: loads any logs/files previously persisted
  // under `dir` and write-through mirrors every mutation there from now on.
  // With this enabled, a Phoenix deployment survives restarts of the actual
  // OS process hosting the simulation — recover with
  // RecoveryService::EnsureProcessAlive after re-creating the topology
  // (see tests/persistence_test.cc).
  Status EnablePersistence(const std::string& dir);
  bool persistent() const { return !dir_.empty(); }

  // --- append-only logs ---
  // Appends `data` to log `name`, creating it if absent. Returns the
  // logical offset of the first appended byte (logical offsets keep
  // counting across head truncations, so LSNs stay stable).
  uint64_t AppendLog(const std::string& name,
                     const std::vector<uint8_t>& data);

  // Logical end offset of log `name` (0 if absent): base + retained bytes.
  uint64_t LogSize(const std::string& name) const;

  // Read-only view of log `name`'s RETAINED contents (empty if absent).
  // Byte i of the view is logical offset LogBase(name) + i.
  const std::vector<uint8_t>& ReadLog(const std::string& name) const;

  // Logical offset of the first retained byte (> 0 after head truncation).
  uint64_t LogBase(const std::string& name) const;

  // Garbage-collects everything before logical offset `new_base` (log
  // truncation: recovery never reads below the checkpointed minimum
  // recovery LSN). No-op if new_base <= current base; clamped to the end.
  void TrimLogHead(const std::string& name, uint64_t new_base);

  // Deletes log `name` if present (used by tests to reset a process).
  void DeleteLog(const std::string& name);

  // Flips `flip_count` random bits in log `name` starting at byte `offset`
  // (failure-injection helper for torn-write / corruption tests).
  void CorruptLog(const std::string& name, uint64_t offset, int flip_count);

  // Truncates log `name` to `size` bytes, simulating a torn tail write.
  void TruncateLog(const std::string& name, uint64_t size);

  // Flips `flip_count` bits in small file `name` starting at byte `offset`
  // (bit-rot injection for e.g. the well-known file). No-op if absent.
  void CorruptFile(const std::string& name, uint64_t offset, int flip_count);

  // --- small atomically replaced files ---
  void WriteFile(const std::string& name, const std::vector<uint8_t>& data);
  Result<std::vector<uint8_t>> ReadFile(const std::string& name) const;
  bool FileExists(const std::string& name) const;
  void DeleteFile(const std::string& name);

 private:
  struct Log {
    uint64_t base = 0;  // logical offset of bytes[0]
    std::vector<uint8_t> bytes;
  };

  void PersistLog(const std::string& name, const Log& log) const;
  void PersistFile(const std::string& name,
                   const std::vector<uint8_t>& data) const;
  void RemovePersisted(const std::string& name, bool is_log) const;

  std::map<std::string, Log> logs_;
  std::map<std::string, std::vector<uint8_t>> files_;
  std::string dir_;  // empty = in-memory only
};

}  // namespace phoenix

#endif  // PHOENIX_SIM_STABLE_STORAGE_H_
