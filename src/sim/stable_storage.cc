#include "sim/stable_storage.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace phoenix {
namespace {

namespace fs = std::filesystem;

const std::vector<uint8_t>& EmptyBytes() {
  static const std::vector<uint8_t>& empty = *new std::vector<uint8_t>();
  return empty;
}

// Flattens a logical name ("machineA/proc1.log") into one path segment.
std::string EncodeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) out.push_back(c == '/' ? '~' : c);
  return out;
}

std::string DecodeName(const std::string& encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (char c : encoded) out.push_back(c == '~' ? '/' : c);
  return out;
}

bool WriteWhole(const fs::path& path, const void* data, size_t n) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  return static_cast<bool>(out);
}

bool ReadWhole(const fs::path& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  auto size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(out->data()), size);
  return static_cast<bool>(in);
}

}  // namespace

Status StableStorage::EnablePersistence(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create persistence dir: " + ec.message());
  }
  dir_ = dir;

  // Load whatever an earlier run left behind. Layout:
  //   <encoded>.log  + <encoded>.base   — a log and its head base
  //   <encoded>.file                    — an atomically-replaced small file
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    fs::path path = entry.path();
    std::string stem = DecodeName(path.stem().string());
    std::vector<uint8_t> bytes;
    if (path.extension() == ".log") {
      if (!ReadWhole(path, &bytes)) {
        return Status::Internal("cannot read " + path.string());
      }
      Log& log = logs_[stem];
      log.bytes = std::move(bytes);
      std::vector<uint8_t> base_bytes;
      fs::path base_path = path;
      base_path.replace_extension(".base");
      if (ReadWhole(base_path, &base_bytes) && base_bytes.size() == 8) {
        uint64_t base = 0;
        for (int i = 0; i < 8; ++i) {
          base |= static_cast<uint64_t>(base_bytes[i]) << (8 * i);
        }
        log.base = base;
      }
    } else if (path.extension() == ".file") {
      if (!ReadWhole(path, &bytes)) {
        return Status::Internal("cannot read " + path.string());
      }
      files_[stem] = std::move(bytes);
    }
  }
  return Status::OK();
}

void StableStorage::PersistLog(const std::string& name, const Log& log) const {
  if (dir_.empty()) return;
  fs::path path = fs::path(dir_) / (EncodeName(name) + ".log");
  WriteWhole(path, log.bytes.data(), log.bytes.size());
  uint8_t base_bytes[8];
  for (int i = 0; i < 8; ++i) {
    base_bytes[i] = static_cast<uint8_t>(log.base >> (8 * i));
  }
  fs::path base_path = fs::path(dir_) / (EncodeName(name) + ".base");
  WriteWhole(base_path, base_bytes, sizeof(base_bytes));
}

void StableStorage::PersistFile(const std::string& name,
                                const std::vector<uint8_t>& data) const {
  if (dir_.empty()) return;
  fs::path path = fs::path(dir_) / (EncodeName(name) + ".file");
  WriteWhole(path, data.data(), data.size());
}

void StableStorage::RemovePersisted(const std::string& name,
                                    bool is_log) const {
  if (dir_.empty()) return;
  std::error_code ec;
  if (is_log) {
    fs::remove(fs::path(dir_) / (EncodeName(name) + ".log"), ec);
    fs::remove(fs::path(dir_) / (EncodeName(name) + ".base"), ec);
  } else {
    fs::remove(fs::path(dir_) / (EncodeName(name) + ".file"), ec);
  }
}

uint64_t StableStorage::AppendLog(const std::string& name,
                                  const std::vector<uint8_t>& data) {
  Log& log = logs_[name];
  uint64_t offset = log.base + log.bytes.size();
  log.bytes.insert(log.bytes.end(), data.begin(), data.end());
  PersistLog(name, log);
  return offset;
}

uint64_t StableStorage::LogSize(const std::string& name) const {
  auto it = logs_.find(name);
  return it == logs_.end() ? 0 : it->second.base + it->second.bytes.size();
}

const std::vector<uint8_t>& StableStorage::ReadLog(
    const std::string& name) const {
  auto it = logs_.find(name);
  return it == logs_.end() ? EmptyBytes() : it->second.bytes;
}

uint64_t StableStorage::LogBase(const std::string& name) const {
  auto it = logs_.find(name);
  return it == logs_.end() ? 0 : it->second.base;
}

void StableStorage::TrimLogHead(const std::string& name, uint64_t new_base) {
  auto it = logs_.find(name);
  if (it == logs_.end()) return;
  Log& log = it->second;
  if (new_base <= log.base) return;
  uint64_t drop = std::min<uint64_t>(new_base - log.base, log.bytes.size());
  log.bytes.erase(log.bytes.begin(),
                  log.bytes.begin() + static_cast<ptrdiff_t>(drop));
  log.base += drop;
  PersistLog(name, log);
}

void StableStorage::DeleteLog(const std::string& name) {
  logs_.erase(name);
  RemovePersisted(name, /*is_log=*/true);
}

void StableStorage::CorruptLog(const std::string& name, uint64_t offset,
                               int flip_count) {
  auto it = logs_.find(name);
  if (it == logs_.end()) return;
  Log& log = it->second;
  for (int i = 0; i < flip_count; ++i) {
    uint64_t pos = offset + static_cast<uint64_t>(i) * 7;
    if (pos < log.base) continue;
    uint64_t rel = pos - log.base;
    if (rel >= log.bytes.size()) break;
    log.bytes[rel] ^= 0x55;
  }
  PersistLog(name, it->second);
}

void StableStorage::TruncateLog(const std::string& name, uint64_t size) {
  auto it = logs_.find(name);
  if (it == logs_.end()) return;
  Log& log = it->second;
  if (size <= log.base) {
    log.bytes.clear();
  } else {
    uint64_t keep = size - log.base;
    if (keep < log.bytes.size()) log.bytes.resize(keep);
  }
  PersistLog(name, log);
}

void StableStorage::CorruptFile(const std::string& name, uint64_t offset,
                                int flip_count) {
  auto it = files_.find(name);
  if (it == files_.end()) return;
  std::vector<uint8_t>& data = it->second;
  for (int i = 0; i < flip_count; ++i) {
    uint64_t pos = offset + static_cast<uint64_t>(i) * 7;
    if (pos >= data.size()) break;
    data[pos] ^= 0x55;
  }
  PersistFile(name, data);
}

void StableStorage::WriteFile(const std::string& name,
                              const std::vector<uint8_t>& data) {
  files_[name] = data;
  PersistFile(name, data);
}

Result<std::vector<uint8_t>> StableStorage::ReadFile(
    const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("file: " + name);
  return it->second;
}

bool StableStorage::FileExists(const std::string& name) const {
  return files_.count(name) > 0;
}

void StableStorage::DeleteFile(const std::string& name) {
  files_.erase(name);
  RemovePersisted(name, /*is_log=*/false);
}

}  // namespace phoenix
