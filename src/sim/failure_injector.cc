#include "sim/failure_injector.h"

#include <algorithm>

namespace phoenix {

const char* FailurePointName(FailurePoint point) {
  switch (point) {
    case FailurePoint::kBeforeIncomingLogged:
      return "before_incoming_logged";
    case FailurePoint::kAfterIncomingLogged:
      return "after_incoming_logged";
    case FailurePoint::kBeforeOutgoingSend:
      return "before_outgoing_send";
    case FailurePoint::kAfterOutgoingReply:
      return "after_outgoing_reply";
    case FailurePoint::kBeforeReplySend:
      return "before_reply_send";
    case FailurePoint::kAfterReplySend:
      return "after_reply_send";
    case FailurePoint::kDuringStateSave:
      return "during_state_save";
    case FailurePoint::kDuringCheckpoint:
      return "during_checkpoint";
    case FailurePoint::kDuringGroupFlush:
      return "during_group_flush";
    case FailurePoint::kDuringRecoveryAnalysis:
      return "during_recovery_analysis";
    case FailurePoint::kDuringRecoveryRestore:
      return "during_recovery_restore";
    case FailurePoint::kBetweenReplayUnits:
      return "between_replay_units";
    case FailurePoint::kDuringEndOfLogFlush:
      return "during_endlog_flush";
  }
  return "unknown";
}

const char* RecoveryAttackName(RecoveryAttack kind) {
  switch (kind) {
    case RecoveryAttack::kCorruptWellKnownFile:
      return "corrupt_wkf";
    case RecoveryAttack::kCorruptNewestStateRecord:
      return "corrupt_state_record";
    case RecoveryAttack::kTearStableTail:
      return "tear_stable_tail";
  }
  return "unknown";
}

void FailureInjector::AddTrigger(const std::string& machine,
                                 uint32_t process_id, FailurePoint point,
                                 uint64_t fire_on_hit) {
  Key key(machine, process_id, static_cast<int>(point));
  // Relative to the hits already consumed at registration time.
  triggers_[key].push_back(hit_counts_[key] + fire_on_hit);
}

void FailureInjector::EnableRandomCrashes(double p, uint64_t seed) {
  random_p_ = p;
  rng_ = Random(seed);
}

void FailureInjector::EnableTornTails(double p, uint64_t seed,
                                      uint32_t max_tear_bytes) {
  torn_p_ = p;
  max_tear_bytes_ = max_tear_bytes;
  tear_rng_ = Random(seed);
}

uint64_t FailureInjector::MaybeTearBytes() {
  if (torn_p_ <= 0.0) return 0;
  if (!tear_rng_.Bernoulli(torn_p_)) return 0;
  uint64_t bytes = 1 + tear_rng_.Uniform(max_tear_bytes_);
  ++torn_tails_fired_;
  return bytes;
}

void FailureInjector::AddRecoveryAttack(const std::string& machine,
                                        uint32_t process_id,
                                        uint64_t before_attempt,
                                        RecoveryAttack kind) {
  recovery_attacks_[{machine, process_id}].push_back({before_attempt, kind});
}

std::vector<RecoveryAttack> FailureInjector::TakeRecoveryAttacks(
    const std::string& machine, uint32_t process_id, uint64_t attempt) {
  std::vector<RecoveryAttack> taken;
  auto it = recovery_attacks_.find({machine, process_id});
  if (it == recovery_attacks_.end()) return taken;
  auto& pending = it->second;
  for (auto scheduled = pending.begin(); scheduled != pending.end();) {
    if (scheduled->first == attempt) {
      taken.push_back(scheduled->second);
      scheduled = pending.erase(scheduled);
      ++recovery_attacks_fired_;
    } else {
      ++scheduled;
    }
  }
  return taken;
}

bool FailureInjector::ShouldCrash(const std::string& machine,
                                  uint32_t process_id, FailurePoint point) {
  Key key(machine, process_id, static_cast<int>(point));
  uint64_t hits = ++hit_counts_[key];

  auto it = triggers_.find(key);
  if (it != triggers_.end()) {
    auto& pending = it->second;
    auto match = std::find(pending.begin(), pending.end(), hits);
    if (match != pending.end()) {
      pending.erase(match);
      ++crashes_fired_;
      return true;
    }
  }
  if (random_p_ > 0.0 && rng_.Bernoulli(random_p_)) {
    ++crashes_fired_;
    return true;
  }
  return false;
}

uint64_t FailureInjector::HitCount(const std::string& machine,
                                   uint32_t process_id,
                                   FailurePoint point) const {
  auto it = hit_counts_.find(Key(machine, process_id, static_cast<int>(point)));
  return it == hit_counts_.end() ? 0 : it->second;
}

void FailureInjector::Clear() {
  hit_counts_.clear();
  triggers_.clear();
  random_p_ = 0.0;
  crashes_fired_ = 0;
  torn_p_ = 0.0;
  max_tear_bytes_ = 48;
  torn_tails_fired_ = 0;
  recovery_attacks_.clear();
  recovery_attacks_fired_ = 0;
}

}  // namespace phoenix
