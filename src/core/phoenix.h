#ifndef PHOENIX_CORE_PHOENIX_H_
#define PHOENIX_CORE_PHOENIX_H_

// Phoenix/App public API — single include for applications.
//
// A minimal program:
//
//   class Counter : public phoenix::Component {
//    public:
//     void RegisterMethods(phoenix::MethodRegistry& m) override {
//       m.Register("Add", [this](const phoenix::ArgList& a) {
//         count_ += a[0].AsInt();
//         return phoenix::Result<phoenix::Value>(phoenix::Value(count_));
//       });
//     }
//     void RegisterFields(phoenix::FieldRegistry& f) override {
//       f.RegisterInt("count", &count_);
//     }
//    private:
//     int64_t count_ = 0;
//   };
//
//   phoenix::Simulation sim;
//   sim.factories().Register<Counter>("Counter");
//   auto& m = sim.AddMachine("alpha");
//   auto& p = m.CreateProcess();
//   phoenix::ExternalClient client(&sim, "alpha");
//   auto uri = client.CreateComponent(p, "Counter", "c1",
//                                     phoenix::ComponentKind::kPersistent, {});
//   client.Call(*uri, "Add", phoenix::MakeArgs(5));
//
// Kill the process at any of the failure points and the component's state
// recovers exactly-once (see tests/exactly_once_test.cc).

#include "common/result.h"
#include "common/status.h"
#include "core/options.h"
#include "runtime/component.h"
#include "runtime/context.h"
#include "runtime/kinds.h"
#include "runtime/machine.h"
#include "runtime/process.h"
#include "runtime/simulation.h"
#include "serde/value.h"

namespace phoenix {

// A plain program outside Phoenix's guarantees (the paper's "external
// component"): it attaches no call IDs, logs nothing, and — unlike
// persistent components — its retries after a server crash may observe the
// §3.1.2 window of vulnerability.
class ExternalClient {
 public:
  // `machine` is where the client program runs; "" means co-located with
  // whatever it calls (no network charge).
  ExternalClient(Simulation* sim, std::string machine);

  // Calls `method` on the component at `uri`. Retries unavailable servers
  // (restarting them through the recovery service) when the runtime option
  // external_client_retries is set.
  Result<Value> Call(const std::string& uri, const std::string& method,
                     ArgList args);

  // Creates a component through `process`'s activator (a logged, recoverable
  // persistent call). Returns the new component's URI.
  Result<std::string> CreateComponent(Process& process,
                                      const std::string& type_name,
                                      const std::string& name,
                                      ComponentKind kind, ArgList ctor_args);

  uint64_t calls_sent() const { return calls_sent_; }
  uint64_t retries() const { return retries_; }

 private:
  Simulation* sim_;
  std::string machine_;
  uint64_t calls_sent_ = 0;
  uint64_t retries_ = 0;
};

}  // namespace phoenix

#endif  // PHOENIX_CORE_PHOENIX_H_
