#ifndef PHOENIX_CORE_OPTIONS_H_
#define PHOENIX_CORE_OPTIONS_H_

#include <cstdint>

namespace phoenix {

// Which logging discipline interceptors apply to persistent components.
enum class LoggingMode : int {
  // Algorithm 1 (the IDEAS'03 baseline): log AND force every one of the
  // four messages of every method call.
  kBaseline = 0,
  // Algorithms 2/3: log receive messages without forcing, never write send
  // messages, force the log only when a send "commits" component state
  // (external clients keep forced long/short records).
  kOptimized = 1,
};

// The prototype's switches (§5: "log optimizations and checkpointing can all
// be turned on or off via switches").
struct RuntimeOptions {
  LoggingMode logging_mode = LoggingMode::kOptimized;

  // Honor the specialized kinds of §3.2 (functional / read-only components,
  // read-only methods). When false they are logged as if persistent.
  // Subordinates are structural (they live inside the parent's context) and
  // are unaffected by this switch.
  bool use_specialized_kinds = true;

  // §3.5 multi-call optimization (not in the paper's prototype; implemented
  // here as an extension): within one method execution force only at the
  // first outgoing call, at a repeated call to the same server, and at the
  // reply.
  bool multi_call_optimization = false;

  // Save a context state record every N completed incoming calls per
  // context (0 = never). §5.4 concludes ~400+ is the break-even for the
  // micro-benchmark.
  uint32_t save_context_state_every = 0;

  // Take a process checkpoint every N incoming calls process-wide (0 =
  // never). The paper takes them "periodically"; a call-count period keeps
  // the simulation deterministic.
  uint32_t process_checkpoint_every = 0;

  // Asynchronous checkpointing: run state-record capture and process
  // checkpoints on a dedicated background session per process instead of
  // inline on the calling chain. Foreground calls only mark their context
  // dirty; every `async_checkpoint_interval` completed incoming calls the
  // background session sweeps the dirty idle contexts (busy ones are
  // deferred and re-armed), takes a process checkpoint, forces the bracket
  // on its own chain, and publishes. §4.3's publish ordering is unchanged —
  // only *which chain* pays for the disk writes moves. Off by default so
  // the inline cadence above stays the pinned reference behavior.
  bool async_checkpoint = false;
  uint32_t async_checkpoint_interval = 64;

  // How many times a caller re-sends a call that found the server dead
  // before giving up (condition 4 says "until it gets some response"; the
  // bound keeps broken test setups from spinning forever).
  int max_call_retries = 64;

  // Capped exponential backoff between retries: attempt k sleeps
  // min(initial * multiplier^k, max), plus a seeded uniform jitter of up to
  // retry_jitter * backoff to de-synchronize concurrent retriers. The first
  // sleep equals the old fixed 10 ms schedule, so fault-free timings and
  // the Table 4 benchmark numbers are unchanged.
  double retry_initial_backoff_ms = 10.0;
  double retry_backoff_multiplier = 2.0;
  double retry_max_backoff_ms = 80.0;
  double retry_jitter = 0.1;

  // Total backoff budget one call may spend across all its retries, in sim
  // milliseconds (0 = unbounded). With the default schedule 64 retries would
  // otherwise burn >4 s of sim time per permanently-dead server.
  double call_retry_budget_ms = 250.0;

  // Whether ExternalClient retries unavailable calls too. Externals are
  // outside the guarantees; retrying lets the window-of-vulnerability tests
  // observe duplicate executions.
  bool external_client_retries = true;

  // Garbage-collect the log head every time a process checkpoint is
  // published: records below every recovery origin and live reply LSN can
  // never be read again. An engineering necessity the paper's checkpoints
  // enable; off by default so logs stay fully inspectable.
  bool auto_truncate_log = false;

  // Group commit: when a session scheduler is active, durability waits
  // park their session and the commit pipeline coalesces all concurrent
  // waits on one log into a single disk force (wal/commit_pipeline.h).
  // Off by default — and without overlapping sessions the flag changes
  // nothing — so single-session runs keep the paper's exact force counts.
  bool group_commit = false;

  // Group-commit batching policy. By default (both 0) the scheduler
  // harvests a flush only when every session is stalled, maximizing batch
  // size at the price of commit latency. `group_commit_max_wait_ms` bounds
  // how long (sim time) the oldest parked waiter may sit before its
  // pipeline is flushed even though runnable sessions remain;
  // `group_commit_max_batch` flushes as soon as that many waiters have
  // accumulated on one pipeline. Either knob trades forces for latency —
  // bench/concurrent_sessions sweeps both.
  double group_commit_max_wait_ms = 0.0;
  uint32_t group_commit_max_batch = 0;

  // Sharded WAL: number of shard logs per process. 1 (default) is the
  // single-log layout with plain byte-offset LSNs — the paper's setup,
  // byte-identical to every pre-sharding benchmark. With N > 1 shards,
  // a seeded hash of the replay-plan chain key (the context id) routes
  // each context's records to one shard log with its own commit pipeline
  // and durable horizon, so independent chains stop contending on one
  // force queue; every frame carries a global sequence number and
  // recovery k-way merges the shards back into append order
  // (wal/shard_router.h, wal/merged_log_reader.h). Clamped to 64 (the
  // per-chain touched-shard bitmask width).
  uint32_t wal_shards = 1;

  // Seed for the context -> shard router hash. Changing it re-partitions
  // contexts across shards; recovery derives the mapping from the log
  // contents, so any seed is safe across restarts.
  uint64_t wal_shard_seed = 0;

  // Parallel replay (pass 2 of recovery): partition the log into
  // per-context replay chains, then replay them as overlapping scheduler
  // sessions bounded by the dependency critical path instead of total log
  // length (recovery/replay_plan.h). Off by default: the sequential
  // replayer is the reference semantics and keeps every pinned benchmark
  // byte-identical. Recovery falls back to sequential replay on salvaged
  // (ambiguous) logs, when recovery is triggered from inside a running
  // session chain, or when the log holds fewer than two chains.
  bool parallel_replay = false;

  // How many overlapping replay sessions the parallel replayer uses.
  uint32_t parallel_replay_sessions = 8;

  // Allow failure-injection hooks to fire while a process is recovering.
  // Recovery is idempotent (it only reads the stable log), so crashes during
  // recovery simply restart it; off by default to keep schedules simple.
  bool inject_failures_during_recovery = false;

  // Recovery supervisor (RecoveryService::EnsureProcessAlive): each rung of
  // the degradation ladder — normal recovery, salvage-assessed recovery,
  // state-record cold start — gets this many attempts before escalating.
  // Backoff between failed attempts is capped-exponential with seeded
  // jitter, like call retries; a budget of 0 means no time bound (the
  // attempt count alone terminates the loop). The fault-free path sleeps
  // never, so these knobs cannot perturb pinned benchmarks.
  int recovery_supervisor_attempts_per_rung = 5;
  double recovery_supervisor_backoff_initial_ms = 10.0;
  double recovery_supervisor_backoff_multiplier = 2.0;
  double recovery_supervisor_backoff_max_ms = 80.0;
  double recovery_supervisor_backoff_jitter = 0.1;
  double recovery_supervisor_backoff_budget_ms = 0.0;
};

}  // namespace phoenix

#endif  // PHOENIX_CORE_OPTIONS_H_
