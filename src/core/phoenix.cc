#include "core/phoenix.h"

#include "core/retry.h"
#include "recovery/recovery_service.h"

namespace phoenix {

ExternalClient::ExternalClient(Simulation* sim, std::string machine)
    : sim_(sim), machine_(std::move(machine)) {}

Result<Value> ExternalClient::Call(const std::string& uri,
                                   const std::string& method, ArgList args) {
  CallMessage msg;
  msg.target_uri = uri;
  msg.method = method;
  msg.args = std::move(args);
  // No call ID, no sender attachment: that absence is how servers recognize
  // an external caller (§2.3).

  const RuntimeOptions& opts = sim_->options();
  int attempts = opts.external_client_retries ? opts.max_call_retries + 1 : 1;
  RetryBackoff backoff(opts);
  Status last = Status::Unavailable("not attempted");
  for (int i = 0; i < attempts; ++i) {
    ++calls_sent_;
    if (i > 0) ++retries_;
    Result<ReplyMessage> reply = sim_->RouteCall(machine_, msg);
    if (reply.ok()) {
      if (!reply->status.ok()) return reply->status;
      return std::move(reply)->value;
    }
    last = std::move(reply).status();
    if (!last.IsUnavailable()) return last;
    if (i + 1 >= attempts) break;  // no retry coming: leave the server down
    double delay = backoff.NextDelayMs(sim_->retry_rng());
    if (delay < 0.0) break;  // retry budget exhausted
    sim_->clock().AdvanceMs(delay);
    Process* target = sim_->ResolveProcess(uri);
    if (target != nullptr) {
      Status restart =
          target->machine()->recovery_service().EnsureProcessAlive(
              target->pid());
      if (!restart.ok()) return restart;
    }
  }
  return last;
}

Result<std::string> ExternalClient::CreateComponent(
    Process& process, const std::string& type_name, const std::string& name,
    ComponentKind kind, ArgList ctor_args) {
  PHX_ASSIGN_OR_RETURN(
      Value uri,
      Call(process.ActivatorUri(), "Create",
           MakeArgs(type_name, name, static_cast<int64_t>(kind),
                    Value::List(std::move(ctor_args)))));
  return uri.AsString();
}

}  // namespace phoenix
