#include "core/options.h"
