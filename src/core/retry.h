#ifndef PHOENIX_CORE_RETRY_H_
#define PHOENIX_CORE_RETRY_H_

#include <algorithm>

#include "common/random.h"
#include "core/options.h"

namespace phoenix {

// Capped-exponential backoff schedule for one logical call's retry loop
// (condition 4). Attempt k sleeps min(initial * multiplier^k, max) plus a
// seeded uniform jitter of up to retry_jitter * that base, and the sum of
// all sleeps for the call is bounded by call_retry_budget_ms (0 = no bound).
// The jitter stream is only consumed when a sleep actually happens, so
// fault-free runs never draw from it.
class RetryBackoff {
 public:
  explicit RetryBackoff(const RuntimeOptions& opts)
      : RetryBackoff(opts.retry_initial_backoff_ms,
                     opts.retry_backoff_multiplier, opts.retry_max_backoff_ms,
                     opts.retry_jitter, opts.call_retry_budget_ms) {}

  // Explicit schedule, for loops with their own knobs (e.g. the recovery
  // supervisor's between-attempt backoff).
  RetryBackoff(double initial_ms, double multiplier, double max_ms,
               double jitter, double budget_ms)
      : initial_ms_(initial_ms),
        multiplier_(multiplier),
        max_ms_(max_ms),
        jitter_(jitter),
        budget_ms_(budget_ms),
        next_ms_(initial_ms) {}

  // The sleep before the next retry, or a negative value when the call's
  // backoff budget is exhausted and the caller should give up.
  double NextDelayMs(Random& jitter_rng) {
    if (budget_ms_ > 0.0 && spent_ms_ >= budget_ms_) return -1.0;
    double base = next_ms_;
    next_ms_ = std::min(next_ms_ * multiplier_, max_ms_);
    double delay = base;
    if (jitter_ > 0.0 && base > 0.0) {
      delay += base * jitter_ * jitter_rng.NextDouble();
    }
    if (budget_ms_ > 0.0) delay = std::min(delay, budget_ms_ - spent_ms_);
    spent_ms_ += delay;
    return delay;
  }

  double spent_ms() const { return spent_ms_; }

 private:
  double initial_ms_;
  double multiplier_;
  double max_ms_;
  double jitter_;
  double budget_ms_;
  double next_ms_;
  double spent_ms_ = 0.0;
};

}  // namespace phoenix

#endif  // PHOENIX_CORE_RETRY_H_
