#ifndef PHOENIX_SERDE_CODEC_H_
#define PHOENIX_SERDE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "serde/value.h"

namespace phoenix {

// Append-only binary encoder: varints, fixed-width ints, length-prefixed
// strings, and Values. The wire/log format for every Phoenix artifact
// (messages, log records, checkpoints) is built from these primitives.
class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v);
  void PutU32(uint32_t v);    // fixed little-endian
  void PutU64(uint64_t v);    // fixed little-endian
  void PutVarint(uint64_t v);
  void PutDouble(double v);
  void PutString(const std::string& s);        // varint length + bytes
  void PutBytes(const uint8_t* data, size_t n);
  void PutValue(const Value& v);
  void PutArgList(const ArgList& args);

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> Release() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

// Sequential decoder over an encoded buffer. Every getter returns a Result
// and fails with kCorruption on truncated or malformed input (e.g. a torn
// log record).
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t n) : data_(data), end_(data + n) {}
  explicit Decoder(const std::vector<uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<uint64_t> GetVarint();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<Value> GetValue();
  Result<ArgList> GetArgList();

  size_t remaining() const { return static_cast<size_t>(end_ - data_); }
  bool exhausted() const { return data_ == end_; }

 private:
  const uint8_t* data_;
  const uint8_t* end_;
};

}  // namespace phoenix

#endif  // PHOENIX_SERDE_CODEC_H_
