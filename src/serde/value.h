#ifndef PHOENIX_SERDE_VALUE_H_
#define PHOENIX_SERDE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace phoenix {

// Value is the dynamic datum Phoenix marshals across context boundaries:
// method arguments, replies, and checkpointed component fields are all
// Values. It plays the role the CLR type system + remoting formatter played
// in the paper's .NET prototype.
//
// Supported kinds: null, bool, int64, double, string, bytes, and list (a
// heterogeneous vector of Values — rich enough for structured replies such
// as the bookstore's search results).
class Value {
 public:
  enum class Kind : uint8_t {
    kNull = 0,
    kBool = 1,
    kInt = 2,
    kDouble = 3,
    kString = 4,
    kBytes = 5,
    kList = 6,
  };

  using List = std::vector<Value>;
  // Bytes are kept in a distinct wrapper so they encode/compare apart from
  // strings.
  struct Bytes {
    std::vector<uint8_t> data;
    friend bool operator==(const Bytes&, const Bytes&) = default;
  };

  Value() : rep_(std::monostate{}) {}
  explicit Value(bool b) : rep_(b) {}
  explicit Value(int64_t i) : rep_(i) {}
  explicit Value(int i) : rep_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : rep_(d) {}
  explicit Value(std::string s) : rep_(std::move(s)) {}
  explicit Value(const char* s) : rep_(std::string(s)) {}
  explicit Value(Bytes b) : rep_(std::move(b)) {}
  explicit Value(List l) : rep_(std::move(l)) {}

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  Kind kind() const { return static_cast<Kind>(rep_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }

  // Typed accessors. Calling the wrong one aborts (internal invariant);
  // components validate argument kinds up front via MethodRegistry traits.
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const Bytes& AsBytes() const;
  const List& AsList() const;
  List& MutableList();

  // Approximate marshalled size in bytes; drives simulated transfer and
  // log-append costs.
  size_t EncodedSizeHint() const;

  // Human-readable rendering for examples and debugging.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, Bytes, List>
      rep_;
};

using ArgList = std::vector<Value>;

// Builds an ArgList from heterogeneous C++ literals:
//   MakeArgs(1, "title", 3.5)
template <typename... Args>
ArgList MakeArgs(Args&&... args) {
  ArgList out;
  out.reserve(sizeof...(args));
  (out.emplace_back(std::forward<Args>(args)), ...);
  return out;
}

}  // namespace phoenix

#endif  // PHOENIX_SERDE_VALUE_H_
