#include "serde/value.h"

#include "common/macros.h"
#include "common/status.h"
#include "common/strings.h"

namespace phoenix {

bool Value::AsBool() const {
  PHX_CHECK(kind() == Kind::kBool);
  return std::get<bool>(rep_);
}

int64_t Value::AsInt() const {
  PHX_CHECK(kind() == Kind::kInt);
  return std::get<int64_t>(rep_);
}

double Value::AsDouble() const {
  if (kind() == Kind::kInt) return static_cast<double>(std::get<int64_t>(rep_));
  PHX_CHECK(kind() == Kind::kDouble);
  return std::get<double>(rep_);
}

const std::string& Value::AsString() const {
  PHX_CHECK(kind() == Kind::kString);
  return std::get<std::string>(rep_);
}

const Value::Bytes& Value::AsBytes() const {
  PHX_CHECK(kind() == Kind::kBytes);
  return std::get<Bytes>(rep_);
}

const Value::List& Value::AsList() const {
  PHX_CHECK(kind() == Kind::kList);
  return std::get<List>(rep_);
}

Value::List& Value::MutableList() {
  PHX_CHECK(kind() == Kind::kList);
  return std::get<List>(rep_);
}

size_t Value::EncodedSizeHint() const {
  switch (kind()) {
    case Kind::kNull:
      return 1;
    case Kind::kBool:
      return 2;
    case Kind::kInt:
      return 6;
    case Kind::kDouble:
      return 9;
    case Kind::kString:
      return 3 + std::get<std::string>(rep_).size();
    case Kind::kBytes:
      return 3 + std::get<Bytes>(rep_).data.size();
    case Kind::kList: {
      size_t total = 3;
      for (const Value& v : std::get<List>(rep_)) {
        total += v.EncodedSizeHint();
      }
      return total;
    }
  }
  return 1;
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return std::get<bool>(rep_) ? "true" : "false";
    case Kind::kInt:
      return StrCat(std::get<int64_t>(rep_));
    case Kind::kDouble:
      return FormatDouble(std::get<double>(rep_), 4);
    case Kind::kString:
      return StrCat("\"", std::get<std::string>(rep_), "\"");
    case Kind::kBytes:
      return StrCat("bytes[", std::get<Bytes>(rep_).data.size(), "]");
    case Kind::kList: {
      std::string out = "[";
      const List& list = std::get<List>(rep_);
      for (size_t i = 0; i < list.size(); ++i) {
        if (i > 0) out += ", ";
        out += list[i].ToString();
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

}  // namespace phoenix
