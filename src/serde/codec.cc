#include "serde/codec.h"

#include <cstring>

namespace phoenix {

void Encoder::PutU8(uint8_t v) { buffer_.push_back(v); }

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(v));
}

void Encoder::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutString(const std::string& s) {
  PutVarint(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void Encoder::PutBytes(const uint8_t* data, size_t n) {
  PutVarint(n);
  buffer_.insert(buffer_.end(), data, data + n);
}

void Encoder::PutValue(const Value& v) {
  PutU8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kBool:
      PutU8(v.AsBool() ? 1 : 0);
      break;
    case Value::Kind::kInt: {
      // zigzag-encode so negatives stay small
      int64_t i = v.AsInt();
      PutVarint((static_cast<uint64_t>(i) << 1) ^
                static_cast<uint64_t>(i >> 63));
      break;
    }
    case Value::Kind::kDouble:
      PutDouble(v.AsDouble());
      break;
    case Value::Kind::kString:
      PutString(v.AsString());
      break;
    case Value::Kind::kBytes:
      PutBytes(v.AsBytes().data.data(), v.AsBytes().data.size());
      break;
    case Value::Kind::kList: {
      PutVarint(v.AsList().size());
      for (const Value& e : v.AsList()) PutValue(e);
      break;
    }
  }
}

void Encoder::PutArgList(const ArgList& args) {
  PutVarint(args.size());
  for (const Value& v : args) PutValue(v);
}

Result<uint8_t> Decoder::GetU8() {
  if (remaining() < 1) return Status::Corruption("truncated u8");
  return *data_++;
}

Result<uint32_t> Decoder::GetU32() {
  if (remaining() < 4) return Status::Corruption("truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(*data_++) << (8 * i);
  return v;
}

Result<uint64_t> Decoder::GetU64() {
  if (remaining() < 8) return Status::Corruption("truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(*data_++) << (8 * i);
  return v;
}

Result<uint64_t> Decoder::GetVarint() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (exhausted()) return Status::Corruption("truncated varint");
    uint8_t byte = *data_++;
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  return Status::Corruption("varint too long");
}

Result<double> Decoder::GetDouble() {
  PHX_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<std::string> Decoder::GetString() {
  PHX_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
  if (remaining() < n) return Status::Corruption("truncated string");
  std::string s(reinterpret_cast<const char*>(data_), n);
  data_ += n;
  return s;
}

Result<Value> Decoder::GetValue() {
  PHX_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  switch (static_cast<Value::Kind>(tag)) {
    case Value::Kind::kNull:
      return Value();
    case Value::Kind::kBool: {
      PHX_ASSIGN_OR_RETURN(uint8_t b, GetU8());
      return Value(b != 0);
    }
    case Value::Kind::kInt: {
      PHX_ASSIGN_OR_RETURN(uint64_t z, GetVarint());
      int64_t i = static_cast<int64_t>(z >> 1) ^ -static_cast<int64_t>(z & 1);
      return Value(i);
    }
    case Value::Kind::kDouble: {
      PHX_ASSIGN_OR_RETURN(double d, GetDouble());
      return Value(d);
    }
    case Value::Kind::kString: {
      PHX_ASSIGN_OR_RETURN(std::string s, GetString());
      return Value(std::move(s));
    }
    case Value::Kind::kBytes: {
      PHX_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
      if (remaining() < n) return Status::Corruption("truncated bytes");
      Value::Bytes b;
      b.data.assign(data_, data_ + n);
      data_ += n;
      return Value(std::move(b));
    }
    case Value::Kind::kList: {
      PHX_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
      Value::List list;
      list.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        PHX_ASSIGN_OR_RETURN(Value v, GetValue());
        list.push_back(std::move(v));
      }
      return Value(std::move(list));
    }
  }
  return Status::Corruption("bad value tag");
}

Result<ArgList> Decoder::GetArgList() {
  PHX_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
  ArgList args;
  args.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PHX_ASSIGN_OR_RETURN(Value v, GetValue());
    args.push_back(std::move(v));
  }
  return args;
}

}  // namespace phoenix
