# Empty dependencies file for micro_substrate_bench.
# This may be replaced when dependencies are built.
