file(REMOVE_RECURSE
  "CMakeFiles/micro_substrate_bench.dir/micro_substrate_bench.cc.o"
  "CMakeFiles/micro_substrate_bench.dir/micro_substrate_bench.cc.o.d"
  "micro_substrate_bench"
  "micro_substrate_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_substrate_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
