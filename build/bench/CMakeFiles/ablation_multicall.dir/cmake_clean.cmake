file(REMOVE_RECURSE
  "CMakeFiles/ablation_multicall.dir/ablation_multicall.cc.o"
  "CMakeFiles/ablation_multicall.dir/ablation_multicall.cc.o.d"
  "ablation_multicall"
  "ablation_multicall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multicall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
