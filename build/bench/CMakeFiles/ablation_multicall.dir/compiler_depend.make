# Empty compiler generated dependencies file for ablation_multicall.
# This may be replaced when dependencies are built.
