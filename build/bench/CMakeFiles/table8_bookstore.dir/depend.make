# Empty dependencies file for table8_bookstore.
# This may be replaced when dependencies are built.
