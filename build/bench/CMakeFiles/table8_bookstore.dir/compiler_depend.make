# Empty compiler generated dependencies file for table8_bookstore.
# This may be replaced when dependencies are built.
