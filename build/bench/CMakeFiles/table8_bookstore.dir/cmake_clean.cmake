file(REMOVE_RECURSE
  "CMakeFiles/table8_bookstore.dir/table8_bookstore.cc.o"
  "CMakeFiles/table8_bookstore.dir/table8_bookstore.cc.o.d"
  "table8_bookstore"
  "table8_bookstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_bookstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
