# Empty compiler generated dependencies file for ablation_checkpoint_interval.
# This may be replaced when dependencies are built.
