file(REMOVE_RECURSE
  "CMakeFiles/ablation_checkpoint_interval.dir/ablation_checkpoint_interval.cc.o"
  "CMakeFiles/ablation_checkpoint_interval.dir/ablation_checkpoint_interval.cc.o.d"
  "ablation_checkpoint_interval"
  "ablation_checkpoint_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_checkpoint_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
