file(REMOVE_RECURSE
  "CMakeFiles/table5_component_types.dir/table5_component_types.cc.o"
  "CMakeFiles/table5_component_types.dir/table5_component_types.cc.o.d"
  "table5_component_types"
  "table5_component_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_component_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
