# Empty compiler generated dependencies file for table5_component_types.
# This may be replaced when dependencies are built.
