# Empty compiler generated dependencies file for ablation_short_records.
# This may be replaced when dependencies are built.
