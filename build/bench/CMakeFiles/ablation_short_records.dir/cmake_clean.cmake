file(REMOVE_RECURSE
  "CMakeFiles/ablation_short_records.dir/ablation_short_records.cc.o"
  "CMakeFiles/ablation_short_records.dir/ablation_short_records.cc.o.d"
  "ablation_short_records"
  "ablation_short_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_short_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
