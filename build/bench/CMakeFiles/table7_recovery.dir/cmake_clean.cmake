file(REMOVE_RECURSE
  "CMakeFiles/table7_recovery.dir/table7_recovery.cc.o"
  "CMakeFiles/table7_recovery.dir/table7_recovery.cc.o.d"
  "table7_recovery"
  "table7_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
