# Empty dependencies file for table7_recovery.
# This may be replaced when dependencies are built.
