file(REMOVE_RECURSE
  "CMakeFiles/table4_log_optimizations.dir/table4_log_optimizations.cc.o"
  "CMakeFiles/table4_log_optimizations.dir/table4_log_optimizations.cc.o.d"
  "table4_log_optimizations"
  "table4_log_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_log_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
