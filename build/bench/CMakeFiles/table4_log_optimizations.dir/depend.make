# Empty dependencies file for table4_log_optimizations.
# This may be replaced when dependencies are built.
