file(REMOVE_RECURSE
  "CMakeFiles/table6_checkpointing.dir/table6_checkpointing.cc.o"
  "CMakeFiles/table6_checkpointing.dir/table6_checkpointing.cc.o.d"
  "table6_checkpointing"
  "table6_checkpointing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_checkpointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
