# Empty compiler generated dependencies file for table6_checkpointing.
# This may be replaced when dependencies are built.
