# Empty compiler generated dependencies file for figure9_disk_writes.
# This may be replaced when dependencies are built.
