file(REMOVE_RECURSE
  "CMakeFiles/figure9_disk_writes.dir/figure9_disk_writes.cc.o"
  "CMakeFiles/figure9_disk_writes.dir/figure9_disk_writes.cc.o.d"
  "figure9_disk_writes"
  "figure9_disk_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure9_disk_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
