file(REMOVE_RECURSE
  "CMakeFiles/crash_recovery_tour.dir/crash_recovery_tour.cpp.o"
  "CMakeFiles/crash_recovery_tour.dir/crash_recovery_tour.cpp.o.d"
  "crash_recovery_tour"
  "crash_recovery_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_recovery_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
