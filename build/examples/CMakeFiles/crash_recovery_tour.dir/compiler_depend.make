# Empty compiler generated dependencies file for crash_recovery_tour.
# This may be replaced when dependencies are built.
