file(REMOVE_RECURSE
  "CMakeFiles/bookstore_demo.dir/bookstore_demo.cpp.o"
  "CMakeFiles/bookstore_demo.dir/bookstore_demo.cpp.o.d"
  "bookstore_demo"
  "bookstore_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookstore_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
