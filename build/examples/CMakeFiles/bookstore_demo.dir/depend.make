# Empty dependencies file for bookstore_demo.
# This may be replaced when dependencies are built.
