file(REMOVE_RECURSE
  "CMakeFiles/meta_search.dir/meta_search.cpp.o"
  "CMakeFiles/meta_search.dir/meta_search.cpp.o.d"
  "meta_search"
  "meta_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
