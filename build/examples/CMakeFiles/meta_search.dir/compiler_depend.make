# Empty compiler generated dependencies file for meta_search.
# This may be replaced when dependencies are built.
