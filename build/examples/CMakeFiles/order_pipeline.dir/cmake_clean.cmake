file(REMOVE_RECURSE
  "CMakeFiles/order_pipeline.dir/order_pipeline.cpp.o"
  "CMakeFiles/order_pipeline.dir/order_pipeline.cpp.o.d"
  "order_pipeline"
  "order_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
