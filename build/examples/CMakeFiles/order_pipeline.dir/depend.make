# Empty dependencies file for order_pipeline.
# This may be replaced when dependencies are built.
