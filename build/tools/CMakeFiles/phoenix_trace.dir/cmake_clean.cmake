file(REMOVE_RECURSE
  "CMakeFiles/phoenix_trace.dir/phoenix_trace.cc.o"
  "CMakeFiles/phoenix_trace.dir/phoenix_trace.cc.o.d"
  "phoenix_trace"
  "phoenix_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
