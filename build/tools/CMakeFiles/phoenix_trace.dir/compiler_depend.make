# Empty compiler generated dependencies file for phoenix_trace.
# This may be replaced when dependencies are built.
