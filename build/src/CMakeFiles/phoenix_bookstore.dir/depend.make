# Empty dependencies file for phoenix_bookstore.
# This may be replaced when dependencies are built.
