
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bookstore/basket_manager.cc" "src/CMakeFiles/phoenix_bookstore.dir/bookstore/basket_manager.cc.o" "gcc" "src/CMakeFiles/phoenix_bookstore.dir/bookstore/basket_manager.cc.o.d"
  "/root/repo/src/bookstore/book_buyer.cc" "src/CMakeFiles/phoenix_bookstore.dir/bookstore/book_buyer.cc.o" "gcc" "src/CMakeFiles/phoenix_bookstore.dir/bookstore/book_buyer.cc.o.d"
  "/root/repo/src/bookstore/book_seller.cc" "src/CMakeFiles/phoenix_bookstore.dir/bookstore/book_seller.cc.o" "gcc" "src/CMakeFiles/phoenix_bookstore.dir/bookstore/book_seller.cc.o.d"
  "/root/repo/src/bookstore/bookstore.cc" "src/CMakeFiles/phoenix_bookstore.dir/bookstore/bookstore.cc.o" "gcc" "src/CMakeFiles/phoenix_bookstore.dir/bookstore/bookstore.cc.o.d"
  "/root/repo/src/bookstore/price_grabber.cc" "src/CMakeFiles/phoenix_bookstore.dir/bookstore/price_grabber.cc.o" "gcc" "src/CMakeFiles/phoenix_bookstore.dir/bookstore/price_grabber.cc.o.d"
  "/root/repo/src/bookstore/setup.cc" "src/CMakeFiles/phoenix_bookstore.dir/bookstore/setup.cc.o" "gcc" "src/CMakeFiles/phoenix_bookstore.dir/bookstore/setup.cc.o.d"
  "/root/repo/src/bookstore/tax_calculator.cc" "src/CMakeFiles/phoenix_bookstore.dir/bookstore/tax_calculator.cc.o" "gcc" "src/CMakeFiles/phoenix_bookstore.dir/bookstore/tax_calculator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/phoenix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
