file(REMOVE_RECURSE
  "libphoenix_bookstore.a"
)
