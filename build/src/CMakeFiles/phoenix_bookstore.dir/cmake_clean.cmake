file(REMOVE_RECURSE
  "CMakeFiles/phoenix_bookstore.dir/bookstore/basket_manager.cc.o"
  "CMakeFiles/phoenix_bookstore.dir/bookstore/basket_manager.cc.o.d"
  "CMakeFiles/phoenix_bookstore.dir/bookstore/book_buyer.cc.o"
  "CMakeFiles/phoenix_bookstore.dir/bookstore/book_buyer.cc.o.d"
  "CMakeFiles/phoenix_bookstore.dir/bookstore/book_seller.cc.o"
  "CMakeFiles/phoenix_bookstore.dir/bookstore/book_seller.cc.o.d"
  "CMakeFiles/phoenix_bookstore.dir/bookstore/bookstore.cc.o"
  "CMakeFiles/phoenix_bookstore.dir/bookstore/bookstore.cc.o.d"
  "CMakeFiles/phoenix_bookstore.dir/bookstore/price_grabber.cc.o"
  "CMakeFiles/phoenix_bookstore.dir/bookstore/price_grabber.cc.o.d"
  "CMakeFiles/phoenix_bookstore.dir/bookstore/setup.cc.o"
  "CMakeFiles/phoenix_bookstore.dir/bookstore/setup.cc.o.d"
  "CMakeFiles/phoenix_bookstore.dir/bookstore/tax_calculator.cc.o"
  "CMakeFiles/phoenix_bookstore.dir/bookstore/tax_calculator.cc.o.d"
  "libphoenix_bookstore.a"
  "libphoenix_bookstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_bookstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
