# Empty compiler generated dependencies file for phoenix.
# This may be replaced when dependencies are built.
