file(REMOVE_RECURSE
  "libphoenix.a"
)
