src/CMakeFiles/phoenix.dir/sim/cost_model.cc.o: \
 /root/repo/src/sim/cost_model.cc /usr/include/stdc-predef.h \
 /root/repo/src/sim/cost_model.h
