
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/crc32c.cc" "src/CMakeFiles/phoenix.dir/common/crc32c.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/common/crc32c.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/phoenix.dir/common/random.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/phoenix.dir/common/status.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/phoenix.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/common/strings.cc.o.d"
  "/root/repo/src/core/options.cc" "src/CMakeFiles/phoenix.dir/core/options.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/core/options.cc.o.d"
  "/root/repo/src/core/phoenix.cc" "src/CMakeFiles/phoenix.dir/core/phoenix.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/core/phoenix.cc.o.d"
  "/root/repo/src/recovery/checkpoint_manager.cc" "src/CMakeFiles/phoenix.dir/recovery/checkpoint_manager.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/recovery/checkpoint_manager.cc.o.d"
  "/root/repo/src/recovery/recovery_manager.cc" "src/CMakeFiles/phoenix.dir/recovery/recovery_manager.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/recovery/recovery_manager.cc.o.d"
  "/root/repo/src/recovery/recovery_service.cc" "src/CMakeFiles/phoenix.dir/recovery/recovery_service.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/recovery/recovery_service.cc.o.d"
  "/root/repo/src/recovery/replay.cc" "src/CMakeFiles/phoenix.dir/recovery/replay.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/recovery/replay.cc.o.d"
  "/root/repo/src/runtime/call_id.cc" "src/CMakeFiles/phoenix.dir/runtime/call_id.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/runtime/call_id.cc.o.d"
  "/root/repo/src/runtime/component.cc" "src/CMakeFiles/phoenix.dir/runtime/component.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/runtime/component.cc.o.d"
  "/root/repo/src/runtime/context.cc" "src/CMakeFiles/phoenix.dir/runtime/context.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/runtime/context.cc.o.d"
  "/root/repo/src/runtime/field_registry.cc" "src/CMakeFiles/phoenix.dir/runtime/field_registry.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/runtime/field_registry.cc.o.d"
  "/root/repo/src/runtime/interceptor.cc" "src/CMakeFiles/phoenix.dir/runtime/interceptor.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/runtime/interceptor.cc.o.d"
  "/root/repo/src/runtime/last_call_table.cc" "src/CMakeFiles/phoenix.dir/runtime/last_call_table.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/runtime/last_call_table.cc.o.d"
  "/root/repo/src/runtime/logging_policy.cc" "src/CMakeFiles/phoenix.dir/runtime/logging_policy.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/runtime/logging_policy.cc.o.d"
  "/root/repo/src/runtime/machine.cc" "src/CMakeFiles/phoenix.dir/runtime/machine.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/runtime/machine.cc.o.d"
  "/root/repo/src/runtime/message.cc" "src/CMakeFiles/phoenix.dir/runtime/message.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/runtime/message.cc.o.d"
  "/root/repo/src/runtime/method_registry.cc" "src/CMakeFiles/phoenix.dir/runtime/method_registry.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/runtime/method_registry.cc.o.d"
  "/root/repo/src/runtime/process.cc" "src/CMakeFiles/phoenix.dir/runtime/process.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/runtime/process.cc.o.d"
  "/root/repo/src/runtime/remote_type_table.cc" "src/CMakeFiles/phoenix.dir/runtime/remote_type_table.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/runtime/remote_type_table.cc.o.d"
  "/root/repo/src/runtime/simulation.cc" "src/CMakeFiles/phoenix.dir/runtime/simulation.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/runtime/simulation.cc.o.d"
  "/root/repo/src/serde/codec.cc" "src/CMakeFiles/phoenix.dir/serde/codec.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/serde/codec.cc.o.d"
  "/root/repo/src/serde/value.cc" "src/CMakeFiles/phoenix.dir/serde/value.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/serde/value.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "src/CMakeFiles/phoenix.dir/sim/cost_model.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/sim/cost_model.cc.o.d"
  "/root/repo/src/sim/disk_model.cc" "src/CMakeFiles/phoenix.dir/sim/disk_model.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/sim/disk_model.cc.o.d"
  "/root/repo/src/sim/failure_injector.cc" "src/CMakeFiles/phoenix.dir/sim/failure_injector.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/sim/failure_injector.cc.o.d"
  "/root/repo/src/sim/network_model.cc" "src/CMakeFiles/phoenix.dir/sim/network_model.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/sim/network_model.cc.o.d"
  "/root/repo/src/sim/sim_clock.cc" "src/CMakeFiles/phoenix.dir/sim/sim_clock.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/sim/sim_clock.cc.o.d"
  "/root/repo/src/sim/stable_storage.cc" "src/CMakeFiles/phoenix.dir/sim/stable_storage.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/sim/stable_storage.cc.o.d"
  "/root/repo/src/wal/log_dump.cc" "src/CMakeFiles/phoenix.dir/wal/log_dump.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/wal/log_dump.cc.o.d"
  "/root/repo/src/wal/log_manager.cc" "src/CMakeFiles/phoenix.dir/wal/log_manager.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/wal/log_manager.cc.o.d"
  "/root/repo/src/wal/log_reader.cc" "src/CMakeFiles/phoenix.dir/wal/log_reader.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/wal/log_reader.cc.o.d"
  "/root/repo/src/wal/log_record.cc" "src/CMakeFiles/phoenix.dir/wal/log_record.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/wal/log_record.cc.o.d"
  "/root/repo/src/wal/log_writer.cc" "src/CMakeFiles/phoenix.dir/wal/log_writer.cc.o" "gcc" "src/CMakeFiles/phoenix.dir/wal/log_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
