file(REMOVE_RECURSE
  "CMakeFiles/figure2_walkthrough_test.dir/figure2_walkthrough_test.cc.o"
  "CMakeFiles/figure2_walkthrough_test.dir/figure2_walkthrough_test.cc.o.d"
  "figure2_walkthrough_test"
  "figure2_walkthrough_test.pdb"
  "figure2_walkthrough_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_walkthrough_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
