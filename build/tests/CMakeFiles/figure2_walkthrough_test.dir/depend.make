# Empty dependencies file for figure2_walkthrough_test.
# This may be replaced when dependencies are built.
