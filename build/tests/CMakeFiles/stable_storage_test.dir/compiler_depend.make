# Empty compiler generated dependencies file for stable_storage_test.
# This may be replaced when dependencies are built.
