file(REMOVE_RECURSE
  "CMakeFiles/stable_storage_test.dir/stable_storage_test.cc.o"
  "CMakeFiles/stable_storage_test.dir/stable_storage_test.cc.o.d"
  "stable_storage_test"
  "stable_storage_test.pdb"
  "stable_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stable_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
