file(REMOVE_RECURSE
  "CMakeFiles/field_registry_test.dir/field_registry_test.cc.o"
  "CMakeFiles/field_registry_test.dir/field_registry_test.cc.o.d"
  "field_registry_test"
  "field_registry_test.pdb"
  "field_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
