# Empty compiler generated dependencies file for log_truncation_test.
# This may be replaced when dependencies are built.
