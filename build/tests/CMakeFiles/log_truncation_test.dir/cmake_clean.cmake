file(REMOVE_RECURSE
  "CMakeFiles/log_truncation_test.dir/log_truncation_test.cc.o"
  "CMakeFiles/log_truncation_test.dir/log_truncation_test.cc.o.d"
  "log_truncation_test"
  "log_truncation_test.pdb"
  "log_truncation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_truncation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
