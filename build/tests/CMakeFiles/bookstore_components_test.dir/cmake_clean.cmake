file(REMOVE_RECURSE
  "CMakeFiles/bookstore_components_test.dir/bookstore_components_test.cc.o"
  "CMakeFiles/bookstore_components_test.dir/bookstore_components_test.cc.o.d"
  "bookstore_components_test"
  "bookstore_components_test.pdb"
  "bookstore_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookstore_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
