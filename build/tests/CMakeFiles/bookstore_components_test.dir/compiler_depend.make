# Empty compiler generated dependencies file for bookstore_components_test.
# This may be replaced when dependencies are built.
