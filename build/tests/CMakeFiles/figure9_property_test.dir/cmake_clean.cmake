file(REMOVE_RECURSE
  "CMakeFiles/figure9_property_test.dir/figure9_property_test.cc.o"
  "CMakeFiles/figure9_property_test.dir/figure9_property_test.cc.o.d"
  "figure9_property_test"
  "figure9_property_test.pdb"
  "figure9_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure9_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
