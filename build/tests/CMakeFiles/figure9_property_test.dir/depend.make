# Empty dependencies file for figure9_property_test.
# This may be replaced when dependencies are built.
