file(REMOVE_RECURSE
  "CMakeFiles/recovery_robustness_test.dir/recovery_robustness_test.cc.o"
  "CMakeFiles/recovery_robustness_test.dir/recovery_robustness_test.cc.o.d"
  "recovery_robustness_test"
  "recovery_robustness_test.pdb"
  "recovery_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
