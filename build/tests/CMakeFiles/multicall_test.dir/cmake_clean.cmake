file(REMOVE_RECURSE
  "CMakeFiles/multicall_test.dir/multicall_test.cc.o"
  "CMakeFiles/multicall_test.dir/multicall_test.cc.o.d"
  "multicall_test"
  "multicall_test.pdb"
  "multicall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
