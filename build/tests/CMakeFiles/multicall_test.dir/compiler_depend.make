# Empty compiler generated dependencies file for multicall_test.
# This may be replaced when dependencies are built.
