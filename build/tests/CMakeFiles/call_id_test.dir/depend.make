# Empty dependencies file for call_id_test.
# This may be replaced when dependencies are built.
