file(REMOVE_RECURSE
  "CMakeFiles/call_id_test.dir/call_id_test.cc.o"
  "CMakeFiles/call_id_test.dir/call_id_test.cc.o.d"
  "call_id_test"
  "call_id_test.pdb"
  "call_id_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/call_id_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
