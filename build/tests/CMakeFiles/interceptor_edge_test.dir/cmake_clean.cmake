file(REMOVE_RECURSE
  "CMakeFiles/interceptor_edge_test.dir/interceptor_edge_test.cc.o"
  "CMakeFiles/interceptor_edge_test.dir/interceptor_edge_test.cc.o.d"
  "interceptor_edge_test"
  "interceptor_edge_test.pdb"
  "interceptor_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interceptor_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
