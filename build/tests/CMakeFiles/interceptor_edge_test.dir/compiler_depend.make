# Empty compiler generated dependencies file for interceptor_edge_test.
# This may be replaced when dependencies are built.
