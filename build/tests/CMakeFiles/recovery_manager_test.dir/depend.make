# Empty dependencies file for recovery_manager_test.
# This may be replaced when dependencies are built.
