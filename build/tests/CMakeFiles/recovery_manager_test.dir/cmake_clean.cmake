file(REMOVE_RECURSE
  "CMakeFiles/recovery_manager_test.dir/recovery_manager_test.cc.o"
  "CMakeFiles/recovery_manager_test.dir/recovery_manager_test.cc.o.d"
  "recovery_manager_test"
  "recovery_manager_test.pdb"
  "recovery_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
