# Empty compiler generated dependencies file for last_call_table_test.
# This may be replaced when dependencies are built.
