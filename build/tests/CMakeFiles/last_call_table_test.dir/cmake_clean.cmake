file(REMOVE_RECURSE
  "CMakeFiles/last_call_table_test.dir/last_call_table_test.cc.o"
  "CMakeFiles/last_call_table_test.dir/last_call_table_test.cc.o.d"
  "last_call_table_test"
  "last_call_table_test.pdb"
  "last_call_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/last_call_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
