# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for last_call_table_test.
