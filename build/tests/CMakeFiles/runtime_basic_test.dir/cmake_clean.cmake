file(REMOVE_RECURSE
  "CMakeFiles/runtime_basic_test.dir/runtime_basic_test.cc.o"
  "CMakeFiles/runtime_basic_test.dir/runtime_basic_test.cc.o.d"
  "runtime_basic_test"
  "runtime_basic_test.pdb"
  "runtime_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
