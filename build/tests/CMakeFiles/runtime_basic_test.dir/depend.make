# Empty dependencies file for runtime_basic_test.
# This may be replaced when dependencies are built.
