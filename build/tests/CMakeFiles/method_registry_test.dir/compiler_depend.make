# Empty compiler generated dependencies file for method_registry_test.
# This may be replaced when dependencies are built.
