file(REMOVE_RECURSE
  "CMakeFiles/method_registry_test.dir/method_registry_test.cc.o"
  "CMakeFiles/method_registry_test.dir/method_registry_test.cc.o.d"
  "method_registry_test"
  "method_registry_test.pdb"
  "method_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
