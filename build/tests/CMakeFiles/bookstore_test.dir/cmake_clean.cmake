file(REMOVE_RECURSE
  "CMakeFiles/bookstore_test.dir/bookstore_test.cc.o"
  "CMakeFiles/bookstore_test.dir/bookstore_test.cc.o.d"
  "bookstore_test"
  "bookstore_test.pdb"
  "bookstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
