# Empty compiler generated dependencies file for bookstore_test.
# This may be replaced when dependencies are built.
