file(REMOVE_RECURSE
  "CMakeFiles/logging_policy_test.dir/logging_policy_test.cc.o"
  "CMakeFiles/logging_policy_test.dir/logging_policy_test.cc.o.d"
  "logging_policy_test"
  "logging_policy_test.pdb"
  "logging_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logging_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
