file(REMOVE_RECURSE
  "CMakeFiles/log_record_test.dir/log_record_test.cc.o"
  "CMakeFiles/log_record_test.dir/log_record_test.cc.o.d"
  "log_record_test"
  "log_record_test.pdb"
  "log_record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
