# Empty dependencies file for log_record_test.
# This may be replaced when dependencies are built.
