# Empty compiler generated dependencies file for failure_injector_test.
# This may be replaced when dependencies are built.
