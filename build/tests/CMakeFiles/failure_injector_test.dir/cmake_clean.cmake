file(REMOVE_RECURSE
  "CMakeFiles/failure_injector_test.dir/failure_injector_test.cc.o"
  "CMakeFiles/failure_injector_test.dir/failure_injector_test.cc.o.d"
  "failure_injector_test"
  "failure_injector_test.pdb"
  "failure_injector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_injector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
