file(REMOVE_RECURSE
  "CMakeFiles/context_failure_test.dir/context_failure_test.cc.o"
  "CMakeFiles/context_failure_test.dir/context_failure_test.cc.o.d"
  "context_failure_test"
  "context_failure_test.pdb"
  "context_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
