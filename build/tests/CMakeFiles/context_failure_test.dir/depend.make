# Empty dependencies file for context_failure_test.
# This may be replaced when dependencies are built.
