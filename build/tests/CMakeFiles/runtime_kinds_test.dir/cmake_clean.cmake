file(REMOVE_RECURSE
  "CMakeFiles/runtime_kinds_test.dir/runtime_kinds_test.cc.o"
  "CMakeFiles/runtime_kinds_test.dir/runtime_kinds_test.cc.o.d"
  "runtime_kinds_test"
  "runtime_kinds_test.pdb"
  "runtime_kinds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_kinds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
