# Empty compiler generated dependencies file for runtime_kinds_test.
# This may be replaced when dependencies are built.
