file(REMOVE_RECURSE
  "CMakeFiles/log_writer_test.dir/log_writer_test.cc.o"
  "CMakeFiles/log_writer_test.dir/log_writer_test.cc.o.d"
  "log_writer_test"
  "log_writer_test.pdb"
  "log_writer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
