# Empty dependencies file for log_writer_test.
# This may be replaced when dependencies are built.
