# Empty compiler generated dependencies file for log_writer_test.
# This may be replaced when dependencies are built.
