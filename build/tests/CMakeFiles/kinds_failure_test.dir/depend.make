# Empty dependencies file for kinds_failure_test.
# This may be replaced when dependencies are built.
