file(REMOVE_RECURSE
  "CMakeFiles/kinds_failure_test.dir/kinds_failure_test.cc.o"
  "CMakeFiles/kinds_failure_test.dir/kinds_failure_test.cc.o.d"
  "kinds_failure_test"
  "kinds_failure_test.pdb"
  "kinds_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kinds_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
