file(REMOVE_RECURSE
  "CMakeFiles/bookstore_failure_test.dir/bookstore_failure_test.cc.o"
  "CMakeFiles/bookstore_failure_test.dir/bookstore_failure_test.cc.o.d"
  "bookstore_failure_test"
  "bookstore_failure_test.pdb"
  "bookstore_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookstore_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
