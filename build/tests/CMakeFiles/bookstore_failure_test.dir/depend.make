# Empty dependencies file for bookstore_failure_test.
# This may be replaced when dependencies are built.
